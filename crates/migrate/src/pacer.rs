//! Pacing for live re-partitioning: bound the foreground cost of a
//! transition by spacing chunk hand-offs out in time.
//!
//! PR 1's coordinator fired chunk hand-offs back-to-back, so the throughput
//! dip a resize causes was bounded only by the table size.  The
//! [`MigrationPacer`] turns the hand-off rate into an operator-chosen
//! budget:
//!
//! * **rate mode** — a token bucket allowing at most `chunks_per_sec`
//!   hand-offs per second;
//! * **feedback mode** — the same bucket, but between hand-offs the pacer
//!   samples the per-partition inbound queue depth (the
//!   [`cphash::ServerStats::queue_depth`] gauge each server publishes every
//!   loop iteration, smoothed through a [`cphash_perfmon::EwmaGauge`]) and
//!   halves the rate while servers are falling behind, recovering it while
//!   they keep up;
//! * **latency feedback mode** — the same controller driven by a
//!   *client-observed* signal instead: a windowed request-latency p99 from
//!   a [`cphash_perfmon::SharedLatencyWindow`] the request path records
//!   into, tracking what applications actually feel rather than how deep
//!   the inbound rings run.
//!
//! The pacer is owned by whoever drives the coordinator (CPSERVER's admin
//! thread, the benchmark harness) and threaded through
//! [`crate::RepartitionCoordinator::resize_to_paced`].

use std::sync::Arc;
use std::time::{Duration, Instant};

use cphash::{CpHash, MigrationPacing};
use cphash_perfmon::{EwmaGauge, SharedLatencyWindow};

/// Token-bucket burst: how many hand-offs may fire without waiting after an
/// idle period.  1.0 keeps the spacing strict.
const BURST_TOKENS: f64 = 1.0;

/// Feedback never slows below this fraction of the configured rate, so a
/// permanently saturated table still finishes its transition.
const MIN_RATE_FRACTION: f64 = 1.0 / 64.0;

/// Multiplicative-increase factor applied while servers keep up.
const RECOVERY_FACTOR: f64 = 1.25;

/// EWMA smoothing for queue-depth samples.
const DEPTH_ALPHA: f64 = 0.3;

/// What a pacer has done so far (cumulative; the coordinator reports
/// per-resize deltas in its [`crate::MigrationReport`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PacerStats {
    /// Chunk hand-offs that had to wait for the token bucket.
    pub paced_waits: u64,
    /// Total time spent waiting on the bucket.
    pub total_wait: Duration,
    /// Feedback decisions that halved the rate (servers falling behind).
    pub backoffs: u64,
    /// Feedback decisions that raised the rate back up.
    pub recoveries: u64,
    /// Queue-depth samples taken.
    pub depth_samples: u64,
}

/// Paces chunk hand-offs (see the module docs).
pub struct MigrationPacer {
    pacing: MigrationPacing,
    /// Current rate in chunks/sec (feedback moves it inside
    /// `[min_rate, max_rate]`; rate mode keeps it fixed).
    rate: f64,
    max_rate: f64,
    min_rate: f64,
    tokens: f64,
    last_refill: Option<Instant>,
    gauge: EwmaGauge,
    probe: Option<Box<dyn FnMut() -> f64 + Send>>,
    stats: PacerStats,
}

impl MigrationPacer {
    /// A pacer that never waits (PR 1 behaviour).
    pub fn unpaced() -> Self {
        Self::from_config(MigrationPacing::Unpaced)
    }

    /// Build a pacer from a pacing configuration.  Feedback mode needs a
    /// queue-depth probe ([`MigrationPacer::with_queue_depth_probe`] or
    /// [`MigrationPacer::for_table`]); without one it degrades to plain
    /// rate mode at the configured rate.
    pub fn from_config(pacing: MigrationPacing) -> Self {
        pacing.validate();
        let rate = match pacing {
            MigrationPacing::Unpaced => f64::INFINITY,
            MigrationPacing::Rate { chunks_per_sec }
            | MigrationPacing::Feedback { chunks_per_sec, .. }
            | MigrationPacing::FeedbackLatency { chunks_per_sec, .. } => chunks_per_sec,
        };
        MigrationPacer {
            pacing,
            rate,
            max_rate: rate,
            min_rate: (rate * MIN_RATE_FRACTION).max(f64::MIN_POSITIVE),
            tokens: BURST_TOKENS,
            last_refill: None,
            gauge: EwmaGauge::new(DEPTH_ALPHA),
            probe: None,
            stats: PacerStats::default(),
        }
    }

    /// Attach a queue-depth probe for feedback mode.  The probe returns the
    /// current depth (words drained per server loop iteration, maximum over
    /// the partitions of interest).
    pub fn with_queue_depth_probe(mut self, probe: impl FnMut() -> f64 + Send + 'static) -> Self {
        self.probe = Some(Box::new(probe));
        self
    }

    /// Attach a latency probe for latency-feedback mode.  The probe returns
    /// the latest client-observed p99 in microseconds (0.0 when no requests
    /// completed since the previous sample, which reads as "no pressure").
    pub fn with_latency_probe(mut self, probe: impl FnMut() -> f64 + Send + 'static) -> Self {
        self.probe = Some(Box::new(probe));
        self
    }

    /// Convenience: a latency probe that takes-and-samples a shared
    /// [`SharedLatencyWindow`] the serving path records request latencies
    /// into (CPSERVER's workers do; benchmark drivers can too).
    pub fn with_latency_window(self, window: Arc<SharedLatencyWindow>) -> Self {
        self.with_latency_probe(move || window.take_p99_us())
    }

    /// Convenience: a pacer whose feedback probe reads the given table's
    /// per-server queue-depth gauges (maximum over all spawned servers —
    /// idle servers report zero, so they never distort the signal).
    ///
    /// [`MigrationPacing::FeedbackLatency`] gets **no** probe here — queue
    /// depths compared against microsecond thresholds would be nonsense —
    /// so it degrades to plain rate mode until the caller attaches a real
    /// latency source with [`MigrationPacer::with_latency_window`] /
    /// [`MigrationPacer::with_latency_probe`] (CPSERVER wires its workers'
    /// shared request-latency window).
    pub fn for_table(table: &CpHash, pacing: MigrationPacing) -> Self {
        let pacer = Self::from_config(pacing);
        if matches!(pacer.pacing, MigrationPacing::FeedbackLatency { .. }) {
            return pacer;
        }
        let stats: Vec<_> = table.server_stats().to_vec();
        pacer.with_queue_depth_probe(move || {
            stats.iter().map(|s| s.queue_depth()).max().unwrap_or(0) as f64
        })
    }

    /// The pacing configuration this pacer was built from.
    pub fn pacing(&self) -> MigrationPacing {
        self.pacing
    }

    /// The current hand-off rate in chunks/sec (`f64::INFINITY` when
    /// unpaced; feedback mode moves this between backoffs and recoveries).
    pub fn current_rate(&self) -> f64 {
        self.rate
    }

    /// Cumulative pacer statistics.
    pub fn stats(&self) -> PacerStats {
        self.stats
    }

    /// Block until the next chunk hand-off is allowed to start.  Called by
    /// the coordinator before every chunk; a no-op when unpaced.
    pub fn before_chunk(&mut self) {
        if matches!(self.pacing, MigrationPacing::Unpaced) {
            return;
        }
        self.apply_feedback();

        let now = Instant::now();
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            return;
        }
        let deficit = 1.0 - self.tokens;
        let wait = Duration::from_secs_f64(deficit / self.rate);
        self.stats.paced_waits += 1;
        self.stats.total_wait += wait;
        std::thread::sleep(wait);
        self.refill(Instant::now());
        self.tokens = (self.tokens - 1.0).max(0.0);
    }

    fn refill(&mut self, now: Instant) {
        let last = self.last_refill.replace(now).unwrap_or(now);
        let elapsed = now.saturating_duration_since(last).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.rate).min(BURST_TOKENS);
    }

    /// Sample the pressure probe and adjust the rate (feedback modes with
    /// a probe attached only).  Queue-depth and latency feedback share the
    /// controller; only the signal and its thresholds differ.
    fn apply_feedback(&mut self) {
        let (high, low) = match self.pacing {
            MigrationPacing::Feedback {
                high_depth,
                low_depth,
                ..
            } => (high_depth, low_depth),
            MigrationPacing::FeedbackLatency {
                high_p99_us,
                low_p99_us,
                ..
            } => (high_p99_us, low_p99_us),
            _ => return,
        };
        let Some(probe) = self.probe.as_mut() else {
            return;
        };
        let pressure = self.gauge.sample(probe());
        self.stats.depth_samples += 1;
        if pressure > high && self.rate > self.min_rate {
            self.rate = (self.rate * 0.5).max(self.min_rate);
            self.stats.backoffs += 1;
        } else if pressure < low && self.rate < self.max_rate {
            self.rate = (self.rate * RECOVERY_FACTOR).min(self.max_rate);
            self.stats.recoveries += 1;
        }
    }
}

impl core::fmt::Debug for MigrationPacer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MigrationPacer")
            .field("pacing", &self.pacing)
            .field("rate", &self.rate)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn unpaced_never_waits() {
        let mut pacer = MigrationPacer::unpaced();
        let start = Instant::now();
        for _ in 0..1_000 {
            pacer.before_chunk();
        }
        assert!(start.elapsed() < Duration::from_millis(100));
        assert_eq!(pacer.stats().paced_waits, 0);
    }

    #[test]
    fn rate_mode_spaces_hand_offs() {
        let mut pacer = MigrationPacer::from_config(MigrationPacing::Rate {
            chunks_per_sec: 1_000.0,
        });
        let start = Instant::now();
        for _ in 0..6 {
            pacer.before_chunk();
        }
        // First hand-off is free (burst of one); the next five wait ~1 ms
        // each.
        assert!(
            start.elapsed() >= Duration::from_millis(4),
            "6 hand-offs at 1000/s finished in {:?}",
            start.elapsed()
        );
        assert!(pacer.stats().paced_waits >= 4);
        assert!(pacer.stats().total_wait >= Duration::from_millis(3));
    }

    #[test]
    fn feedback_backs_off_under_load_and_recovers() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let depth = Arc::new(AtomicU64::new(10_000));
        let probe_depth = Arc::clone(&depth);
        let mut pacer = MigrationPacer::from_config(MigrationPacing::Feedback {
            chunks_per_sec: 10_000.0,
            high_depth: 128.0,
            low_depth: 32.0,
        })
        .with_queue_depth_probe(move || probe_depth.load(Ordering::Relaxed) as f64);

        for _ in 0..4 {
            pacer.before_chunk();
        }
        assert!(pacer.stats().backoffs >= 3, "{:?}", pacer.stats());
        let slowed = pacer.current_rate();
        assert!(slowed < 10_000.0 / 4.0, "rate still {slowed}");

        // Load clears: the rate climbs back towards the configured maximum.
        depth.store(0, Ordering::Relaxed);
        for _ in 0..64 {
            pacer.before_chunk();
        }
        assert!(pacer.current_rate() > slowed);
        assert!(pacer.stats().recoveries > 0);
        assert!(pacer.stats().depth_samples >= 68);
    }

    #[test]
    fn latency_feedback_backs_off_on_high_p99_and_recovers() {
        let window = Arc::new(SharedLatencyWindow::new());
        let mut pacer = MigrationPacer::from_config(MigrationPacing::FeedbackLatency {
            chunks_per_sec: 10_000.0,
            high_p99_us: 2_000.0,
            low_p99_us: 500.0,
        })
        .with_latency_window(Arc::clone(&window));

        // Clients observe ~16 ms p99: the pacer must back off.
        for _ in 0..4 {
            for _ in 0..100 {
                window.record_ns(16_000_000);
            }
            pacer.before_chunk();
        }
        assert!(pacer.stats().backoffs >= 3, "{:?}", pacer.stats());
        let slowed = pacer.current_rate();
        assert!(slowed < 10_000.0 / 4.0, "rate still {slowed}");

        // Latency clears (empty windows read as no pressure): recover.
        for _ in 0..64 {
            pacer.before_chunk();
        }
        assert!(pacer.current_rate() > slowed);
        assert!(pacer.stats().recoveries > 0);
    }

    #[test]
    fn latency_feedback_without_probe_degrades_to_rate_mode() {
        let mut pacer = MigrationPacer::from_config(MigrationPacing::latency_feedback(5_000.0));
        for _ in 0..8 {
            pacer.before_chunk();
        }
        assert_eq!(pacer.stats().depth_samples, 0);
        assert_eq!(pacer.current_rate(), 5_000.0);
        assert!(pacer.stats().paced_waits > 0);
    }

    #[test]
    fn feedback_without_probe_degrades_to_rate_mode() {
        let mut pacer = MigrationPacer::from_config(MigrationPacing::feedback(5_000.0));
        for _ in 0..8 {
            pacer.before_chunk();
        }
        assert_eq!(pacer.stats().depth_samples, 0);
        assert_eq!(pacer.current_rate(), 5_000.0);
        assert!(pacer.stats().paced_waits > 0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn invalid_config_is_rejected_at_construction() {
        MigrationPacer::from_config(MigrationPacing::Rate {
            chunks_per_sec: -1.0,
        });
    }
}
