//! # cphash-migrate — online repartitioning for CPHash
//!
//! The paper (§8.1) leaves "dynamically deciding how many cores to use for
//! server threads" as future work; `cphash::dynamic::ServerLoadController`
//! implements the *decision* half.  This crate implements the *actuation*
//! half: re-partitioning a **live** table with no lost or duplicated keys
//! while clients keep issuing operations.
//!
//! ## How a transition works
//!
//! The key space is cut into migration chunks (a pure function of the key's
//! top hash bits), and the shared [`cphash::EpochRouter`] holds a watermark:
//! chunks below it route with the new partition count, the rest with the
//! old.  For each chunk the [`RepartitionCoordinator`]:
//!
//! 1. sends `MigratePrepare` to every *receiving* server, which then defers
//!    requests for keys that are in flight towards it;
//! 2. sends `MigrateOut` to every *source* server, which atomically
//!    extracts the chunk's leaving keys (waiting for in-flight inserts to
//!    publish first) and hands the batch back by address over its response
//!    ring — the same shared-memory pointer-passing CPHash uses for values;
//! 3. regroups entries by their new owner and delivers them with
//!    `MigrateIn`, whose absorption each destination acknowledges;
//! 4. advances the router watermark, atomically switching client routing
//!    for that chunk to the new layout.
//!
//! Requests that race with a move are never wrong, only *redirected*: a
//! server that no longer (or does not yet) own a key answers with a retry
//! response, and the client resubmits to the owning partition under the
//! same completion token.  At every instant exactly one server will execute
//! an operation on a given key.
//!
//! ```no_run
//! use cphash::{CpHash, CpHashConfig};
//! use cphash_migrate::RepartitionCoordinator;
//!
//! let (table, clients) = CpHash::new(CpHashConfig::new(2, 4).with_max_partitions(8));
//! let mut coordinator = RepartitionCoordinator::new(table.take_control().unwrap());
//! // ... clients hammer the table from other threads ...
//! let report = coordinator.resize_to(4).unwrap();
//! println!("{report}");
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod coordinator;
pub mod pacer;

pub use coordinator::{
    MigrateError, MigrationReport, RepartitionCoordinator, DEFAULT_MAX_BATCH_BYTES,
};
pub use pacer::{MigrationPacer, PacerStats};

// Re-export the pacing knob so callers configuring a pacer need only this
// crate (the type lives in `cphash::config` so table configs can carry it).
pub use cphash::MigrationPacing;
