//! End-to-end transitions on a real table: every key must survive grows and
//! shrinks, and the routing/metadata must agree afterwards.

use cphash::{CpHash, CpHashConfig};
use cphash_migrate::{MigrateError, RepartitionCoordinator};

fn elastic_table(
    partitions: usize,
    max: usize,
    clients: usize,
) -> (CpHash, Vec<cphash::ClientHandle>, RepartitionCoordinator) {
    let (table, clients) =
        CpHash::new(CpHashConfig::new(partitions, clients).with_max_partitions(max));
    let coordinator = RepartitionCoordinator::new(table.take_control().expect("control handle"));
    (table, clients, coordinator)
}

#[test]
fn grow_then_shrink_preserves_every_key() {
    const KEYS: u64 = 2_000;
    let (mut table, mut clients, mut coordinator) = elastic_table(2, 4, 1);
    let client = &mut clients[0];
    for key in 0..KEYS {
        assert!(client.insert(key, &(key * 3).to_le_bytes()).unwrap());
    }

    let report = coordinator.resize_to(4).unwrap();
    assert_eq!(report.from_partitions, 2);
    assert_eq!(report.to_partitions, 4);
    assert!(report.keys_moved > 0, "a 2->4 grow must move keys");
    assert_eq!(table.partitions(), 4);
    assert_eq!(client.partitions(), 4);
    for key in 0..KEYS {
        let v = client
            .get(key)
            .unwrap()
            .unwrap_or_else(|| panic!("key {key} lost in grow"));
        assert_eq!(v.as_slice(), (key * 3).to_le_bytes());
    }

    let report = coordinator.resize_to(2).unwrap();
    assert_eq!(report.from_partitions, 4);
    assert_eq!(report.to_partitions, 2);
    assert!(report.keys_moved > 0, "a 4->2 shrink must move keys back");
    assert_eq!(table.partitions(), 2);
    for key in 0..KEYS {
        let v = client
            .get(key)
            .unwrap()
            .unwrap_or_else(|| panic!("key {key} lost in shrink"));
        assert_eq!(v.as_slice(), (key * 3).to_le_bytes());
    }

    // After the shrink, the idle servers must hold nothing: the sum of keys
    // the active partitions hold equals the key count.
    drop(clients);
    table.shutdown();
    let stats = table.partition_stats();
    assert!(stats.exported >= report.keys_moved as u64);
    assert!(stats.absorbed >= report.keys_moved as u64);
    assert_eq!(
        stats.exported, stats.absorbed,
        "every exported key was absorbed"
    );
}

#[test]
fn values_of_every_size_survive_migration() {
    let (mut table, mut clients, mut coordinator) = elastic_table(1, 3, 1);
    let client = &mut clients[0];
    let sizes = [0usize, 1, 8, 16, 17, 100, 1000, 70_000];
    for (key, size) in sizes.iter().enumerate() {
        let value = vec![key as u8 ^ 0x5A; *size];
        assert!(client.insert(key as u64, &value).unwrap());
    }
    coordinator.resize_to(3).unwrap();
    for (key, size) in sizes.iter().enumerate() {
        let v = client.get(key as u64).unwrap().expect("key survives");
        assert_eq!(v.len(), *size);
        assert!(v.as_slice().iter().all(|b| *b == key as u8 ^ 0x5A));
    }
    drop(clients);
    table.shutdown();
}

#[test]
fn resize_rejects_out_of_range_and_reports_no_ops() {
    let (mut table, clients, mut coordinator) = elastic_table(2, 4, 1);
    assert_eq!(coordinator.active_partitions(), 2);
    assert_eq!(coordinator.max_partitions(), 4);
    assert!(matches!(
        coordinator.resize_to(5),
        Err(MigrateError::Transition(_))
    ));
    assert!(matches!(
        coordinator.resize_to(0),
        Err(MigrateError::Transition(_))
    ));
    let report = coordinator.resize_to(2).unwrap();
    assert_eq!(report.keys_moved, 0);
    assert_eq!(report.chunks, 0, "same-size resize is a no-op");
    drop(clients);
    table.shutdown();
}

#[test]
fn controller_recommendations_drive_the_coordinator() {
    use cphash::Recommendation;
    let (mut table, clients, mut coordinator) = elastic_table(2, 4, 1);
    assert!(coordinator
        .apply(Recommendation::Keep(2))
        .unwrap()
        .is_none());
    let report = coordinator
        .apply(Recommendation::Grow(3))
        .unwrap()
        .expect("grow ran");
    assert_eq!(report.to_partitions, 3);
    assert_eq!(table.partitions(), 3);
    // A recommendation matching the current size is a no-op.
    assert!(coordinator
        .apply(Recommendation::Grow(3))
        .unwrap()
        .is_none());
    let report = coordinator
        .apply(Recommendation::Shrink(1))
        .unwrap()
        .expect("shrink ran");
    assert_eq!(report.to_partitions, 1);
    drop(clients);
    table.shutdown();
}

#[test]
fn resize_after_shutdown_reports_server_gone() {
    let (mut table, clients, mut coordinator) = elastic_table(2, 4, 1);
    drop(clients);
    table.shutdown();
    assert_eq!(coordinator.resize_to(4), Err(MigrateError::ServerGone));
}

#[test]
fn oversized_chunk_deliveries_are_split_and_lose_nothing() {
    const KEYS: u64 = 300;
    const VALUE_LEN: usize = 512;
    let (table, mut clients) = CpHash::new(CpHashConfig::new(1, 1).with_max_partitions(4));
    // A tiny per-delivery ceiling: with 512-byte values, at most ~3 entries
    // fit per batch, so every populated chunk delivery must split.
    let mut coordinator =
        RepartitionCoordinator::new(table.take_control().expect("control handle"))
            .with_max_batch_bytes(2 * 1024);
    assert_eq!(coordinator.max_batch_bytes(), 2 * 1024);
    let mut table = table;
    let client = &mut clients[0];
    let value = vec![0xA5u8; VALUE_LEN];
    for key in 0..KEYS {
        assert!(client.insert(key, &value).unwrap());
    }

    let report = coordinator.resize_to(4).unwrap();
    assert_eq!(report.to_partitions, 4);
    // Roughly 3 in 4 keys leave partition 0 (hash-distributed).
    assert!(report.keys_moved as u64 > KEYS / 2);
    // The ceiling forces strictly more deliveries than the unsplit path's
    // upper bound of one batch per (chunk, receiver) pair.
    let unsplit_upper_bound = report.chunks * 4;
    assert!(
        report.batches > unsplit_upper_bound / 2,
        "expected heavy splitting, got {} batches over {} chunks",
        report.batches,
        report.chunks
    );
    let min_batches = (report.keys_moved * (VALUE_LEN + 8)).div_ceil(2 * 1024);
    assert!(
        report.batches >= min_batches,
        "{} batches cannot carry {} keys under the ceiling (need >= {})",
        report.batches,
        report.keys_moved,
        min_batches
    );

    // Nothing lost or corrupted by the split deliveries.
    for key in 0..KEYS {
        let v = client
            .get(key)
            .unwrap()
            .unwrap_or_else(|| panic!("key {key} lost in split-batch grow"));
        assert_eq!(v.as_slice(), value.as_slice());
    }
    drop(clients);
    table.shutdown();
}
