//! Shared-memory message passing for CPHash.
//!
//! CPHash client threads send `Lookup`/`Insert` requests to server threads
//! and receive responses back "using message passing (via shared memory)"
//! (§3).  The messaging layer is where most of the performance headroom
//! lives, so the paper describes it in detail (§3.4):
//!
//! * **Two designs** (Figure 3): a *single-value* channel — one slot per
//!   client/server pair, client writes and waits, server overwrites with the
//!   result — and an *array of buffers* (a circular buffer) with a read
//!   index, a write index and a *temporary* write index.
//! * **Batching**: with the circular buffer the client "can just queue the
//!   requests to the servers; thus, even if the server is busy, the client
//!   can continue working and schedule operations for other servers".
//! * **Packing**: the producer only publishes (updates the shared write
//!   index) when a whole cache line of messages has accumulated, and the
//!   consumer only updates the shared read index after draining a full
//!   line, so "the server can receive several messages using only a single
//!   cache miss".
//!
//! This crate implements both designs for arbitrary `Copy` message types:
//!
//! * [`SingleSlotChannel`] — the single-value design, used as the ablation
//!   baseline (`ablate_channel` bench) and for low-rate control messages.
//! * [`RingBuffer`] / [`Producer`] / [`Consumer`] — the batched circular
//!   buffer, the design CPHash actually uses.
//! * [`duplex`] — a client↔server pair of rings (requests one way,
//!   responses the other), the unit CPHash instantiates per
//!   (client, server) pair.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod duplex;
pub mod ring;
pub mod single_slot;
pub mod stats;

pub use duplex::{duplex, DuplexClient, DuplexServer};
pub use ring::{ring, Consumer, Producer, RingBuffer, RingConfig};
pub use single_slot::SingleSlotChannel;
pub use stats::ChannelStats;

/// Error returned when a bounded queue cannot accept another message.
///
/// The paper's clients react by flushing and working on other servers (or,
/// at very large batch sizes, by throttling — "larger batch sizes overflow
/// queues between client and server threads", §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull<T> {
    /// The message that could not be enqueued, returned to the caller.
    pub message: T,
}

impl<T> core::fmt::Display for QueueFull<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("message queue is full")
    }
}

impl<T: core::fmt::Debug> std::error::Error for QueueFull<T> {}

/// Error returned when the other end of a channel has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl core::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("channel peer disconnected")
    }
}

impl std::error::Error for Disconnected {}
