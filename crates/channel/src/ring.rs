//! The batched circular buffer ("array of buffers") design.
//!
//! This is the message-passing design CPHash uses (paper §3.4):
//!
//! > "The implementation of an array of buffers consists of the following: a
//! > data buffer array, a read index, a write index, and a temporary write
//! > index. When the producer wants to add data to the buffer, it first
//! > makes sure that the read index is large enough compared to the
//! > temporary write index so that no unread data will be overwritten. Then
//! > it writes data to buffer and updates the temporary write index. When
//! > the temporary write index is sufficiently larger than the write index,
//! > the producer flushes the buffer by changing the write index to the
//! > temporary write index."
//!
//! and on the consumer side:
//!
//! > "the client threads flush the buffer when the whole cache line is full
//! > and the server threads update the read index after they are done
//! > reading all the operations in a cache line."
//!
//! The implementation below is a single-producer / single-consumer ring of
//! `Copy` messages with exactly those three indices, each padded to its own
//! cache line.  Indices increase monotonically (they are *counts*, not
//! wrapped offsets), which makes the full/empty arithmetic overflow-free for
//! any realistic run length and keeps the invariants easy to state:
//!
//! * `read_index <= write_index <= temp_write_index`
//! * `temp_write_index - read_index <= capacity`
//
// cphash-lint: hot-path

use core::marker::PhantomData;
use core::mem::MaybeUninit;
use std::sync::Arc;

use cphash_sync::atomic::{plain, AtomicBool, AtomicU64, Ordering};
use cphash_sync::ModelUnsafeCell;

use cphash_cacheline::{CacheAligned, CACHE_LINE_SIZE};

use crate::{ChannelStats, QueueFull};

/// Configuration of a ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingConfig {
    /// Number of message slots (rounded up to a power of two).
    pub capacity: usize,
    /// Messages the producer accumulates before publishing the shared write
    /// index.  `None` derives the value from the message size so that one
    /// flush corresponds to one full cache line (the paper's policy).
    pub flush_threshold: Option<usize>,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            capacity: 4096,
            flush_threshold: None,
        }
    }
}

impl RingConfig {
    /// Config with a specific capacity and the default (one cache line)
    /// flush threshold.
    pub fn with_capacity(capacity: usize) -> Self {
        RingConfig {
            capacity,
            ..Default::default()
        }
    }

    fn resolved_flush_threshold<T>(&self) -> usize {
        match self.flush_threshold {
            Some(n) => n.max(1),
            None => {
                let per_line = CACHE_LINE_SIZE / core::mem::size_of::<T>().max(1);
                per_line.max(1)
            }
        }
    }
}

/// Shared state of one single-producer single-consumer ring.
pub struct RingBuffer<T> {
    buffer: Box<[ModelUnsafeCell<MaybeUninit<T>>]>,
    mask: u64,
    /// Consumer-owned: first message not yet consumed.
    read_index: CacheAligned<AtomicU64>,
    /// Producer-published: first message not yet produced *and visible*.
    write_index: CacheAligned<AtomicU64>,
    /// Producer-private progress (only the producer writes it; stored here
    /// so the structure mirrors the paper's layout and so the consumer-side
    /// diagnostics can report it).  Always a plain std atomic — it is a
    /// diagnostic gauge, never a synchronization point, and keeping it out
    /// of the model halves the tracked-op count per push.
    temp_write_index: CacheAligned<plain::AtomicU64>,
    producer_alive: AtomicBool,
    consumer_alive: AtomicBool,
    stats: ChannelStats,
}

// SAFETY: the ring hands out exactly one Producer and one Consumer; slots
// are published with release/acquire ordering on `write_index` before the
// consumer reads them, and reclaimed via `read_index` before the producer
// overwrites them.
unsafe impl<T: Send> Send for RingBuffer<T> {}
unsafe impl<T: Send> Sync for RingBuffer<T> {}

impl<T> RingBuffer<T> {
    /// Messages currently buffered and visible to the consumer.
    pub fn visible_len(&self) -> usize {
        let w = self.write_index.load(Ordering::Acquire);
        let r = self.read_index.load(Ordering::Acquire);
        (w - r) as usize
    }

    /// Capacity in messages.
    pub fn capacity(&self) -> usize {
        (self.mask + 1) as usize
    }

    /// Shared statistics.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }
}

/// Create a connected producer/consumer pair over a new ring buffer.
pub fn ring<T: Copy + Send>(config: RingConfig) -> (Producer<T>, Consumer<T>) {
    let capacity = config.capacity.next_power_of_two().max(2);
    let buffer: Vec<ModelUnsafeCell<MaybeUninit<T>>> = (0..capacity)
        .map(|_| ModelUnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let shared = Arc::new(RingBuffer {
        buffer: buffer.into_boxed_slice(),
        mask: capacity as u64 - 1,
        read_index: CacheAligned::new(AtomicU64::new(0)),
        write_index: CacheAligned::new(AtomicU64::new(0)),
        temp_write_index: CacheAligned::new(plain::AtomicU64::new(0)),
        producer_alive: AtomicBool::new(true),
        consumer_alive: AtomicBool::new(true),
        stats: ChannelStats::new(),
    });
    let flush_threshold = config.resolved_flush_threshold::<T>();
    (
        Producer {
            shared: Arc::clone(&shared),
            temp_write: 0,
            published_write: 0,
            cached_read: 0,
            flush_threshold,
            _not_sync: PhantomData,
        },
        Consumer {
            shared,
            local_read: 0,
            published_read: 0,
            cached_write: 0,
            read_publish_threshold: flush_threshold,
            _not_sync: PhantomData,
        },
    )
}

/// Producing (client → server) half of a ring.
pub struct Producer<T> {
    shared: Arc<RingBuffer<T>>,
    /// Producer-private count of messages written (the "temporary write
    /// index" of the paper).
    temp_write: u64,
    /// Last value stored to the shared write index.
    published_write: u64,
    /// Cached copy of the consumer's read index, refreshed only when the
    /// ring looks full — avoids touching the shared line on every push.
    cached_read: u64,
    flush_threshold: usize,
    _not_sync: PhantomData<core::cell::Cell<()>>,
}

impl<T: Copy + Send> Producer<T> {
    /// Try to enqueue a message. Automatically publishes the write index
    /// once a full cache line of messages has accumulated.
    ///
    /// Returns the message back inside [`QueueFull`] if the ring has no free
    /// slot — the caller decides whether to flush, spin, or work elsewhere.
    #[inline]
    pub fn try_push(&mut self, message: T) -> Result<(), QueueFull<T>> {
        let capacity = self.shared.mask + 1;
        if self.temp_write - self.cached_read == capacity {
            // Looks full based on our cached view; refresh the real read
            // index (this is the only shared-line read on the push path).
            self.cached_read = self.shared.read_index.load(Ordering::Acquire);
            if self.temp_write - self.cached_read == capacity {
                self.shared.stats.add_full_event();
                return Err(QueueFull { message });
            }
        }
        let slot = (self.temp_write & self.shared.mask) as usize;
        self.shared.buffer[slot].with_mut(|p| {
            // SAFETY: the capacity check above guarantees the consumer has
            // finished with this slot (read_index has moved past it on a
            // previous lap), and only this producer writes slots.
            unsafe { (*p).write(message) };
        });
        self.temp_write += 1;
        self.shared
            .temp_write_index
            // relaxed: diagnostic gauge only; the release store in flush()
            // is what publishes data.
            .store(self.temp_write, plain::Ordering::Relaxed);
        if self.temp_write - self.published_write >= self.flush_threshold as u64 {
            self.flush();
        }
        Ok(())
    }

    /// Enqueue a whole batch with one synchronization round: at most one
    /// refresh of the consumer's read index, one pass of slot writes, and
    /// one release publish of the write index — O(1) atomics per batch
    /// instead of per message.
    ///
    /// Returns how many messages were accepted (a full ring accepts fewer
    /// than `messages.len()`, possibly zero); the batch is published
    /// immediately, partial cache lines included, since batch producers are
    /// at the end of their gathering round by definition.
    pub fn push_batch(&mut self, messages: &[T]) -> usize {
        let capacity = self.shared.mask + 1;
        let mut free = (capacity - (self.temp_write - self.cached_read)) as usize;
        if free < messages.len() {
            self.cached_read = self.shared.read_index.load(Ordering::Acquire);
            free = (capacity - (self.temp_write - self.cached_read)) as usize;
        }
        let n = free.min(messages.len());
        if n == 0 {
            if !messages.is_empty() {
                self.shared.stats.add_full_event();
            }
            return 0;
        }
        for (i, message) in messages[..n].iter().enumerate() {
            let slot = ((self.temp_write + i as u64) & self.shared.mask) as usize;
            self.shared.buffer[slot].with_mut(|p| {
                // SAFETY: the free-slot computation above guarantees the
                // consumer has finished with these `n` slots, and only this
                // producer writes slots.
                unsafe { (*p).write(*message) };
            });
        }
        self.temp_write += n as u64;
        self.shared
            .temp_write_index
            // relaxed: diagnostic gauge only; the release store in flush()
            // is what publishes data.
            .store(self.temp_write, plain::Ordering::Relaxed);
        self.flush();
        n
    }

    /// Push, spinning (and flushing) until space is available.
    ///
    /// Used by tests and by clients that have nothing else to do; the CPHash
    /// client normally reacts to [`QueueFull`] by draining responses first.
    pub fn push_blocking(&mut self, message: T) {
        let mut msg = message;
        loop {
            match self.try_push(msg) {
                Ok(()) => return,
                Err(QueueFull { message }) => {
                    msg = message;
                    self.flush();
                    cphash_sync::spin_hint();
                }
            }
        }
    }

    /// Publish all written messages to the consumer (update the shared
    /// write index).  The paper's clients call this at the end of a batch.
    #[inline]
    pub fn flush(&mut self) {
        if self.temp_write != self.published_write {
            self.shared
                .write_index
                .store(self.temp_write, Ordering::Release);
            let newly = self.temp_write - self.published_write;
            self.published_write = self.temp_write;
            self.shared.stats.add_pushed(newly);
            self.shared.stats.add_flush();
        }
    }

    /// Seeded-bug hook for the model-check regression suite: publish the
    /// write index with `Relaxed` instead of `Release`, exactly the
    /// weakened-publish mistake PR 2's reorder race was a cousin of.  The
    /// checker must flag the consumer's subsequent slot read as a data
    /// race; the suite asserts that it does.  Only exists in model builds.
    #[cfg(cphash_model)]
    pub fn flush_weak_for_modelcheck(&mut self) {
        if self.temp_write != self.published_write {
            self.shared
                .write_index
                // relaxed: intentionally wrong — this is the seeded bug.
                .store(self.temp_write, Ordering::Relaxed);
            let newly = self.temp_write - self.published_write;
            self.published_write = self.temp_write;
            self.shared.stats.add_pushed(newly);
            self.shared.stats.add_flush();
        }
    }

    /// Messages written but not yet published.
    pub fn pending_unflushed(&self) -> usize {
        (self.temp_write - self.published_write) as usize
    }

    /// Free slots from the producer's (possibly stale) point of view.
    pub fn free_slots(&mut self) -> usize {
        self.cached_read = self.shared.read_index.load(Ordering::Acquire);
        (self.shared.mask + 1 - (self.temp_write - self.cached_read)) as usize
    }

    /// Whether the consumer half still exists.
    pub fn is_peer_alive(&self) -> bool {
        self.shared.consumer_alive.load(Ordering::Acquire)
    }

    /// Shared ring statistics.
    pub fn stats(&self) -> &ChannelStats {
        self.shared.stats()
    }

    /// Capacity of the underlying ring.
    pub fn capacity(&self) -> usize {
        self.shared.capacity()
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.shared.producer_alive.store(false, Ordering::Release);
    }
}

/// Consuming (server-side) half of a ring.
pub struct Consumer<T> {
    shared: Arc<RingBuffer<T>>,
    /// Messages consumed (not necessarily published back yet).
    local_read: u64,
    /// Last value stored to the shared read index.
    published_read: u64,
    /// Cached copy of the producer's write index.
    cached_write: u64,
    /// Publish the read index after consuming this many messages (a cache
    /// line worth), or when the ring drains.
    read_publish_threshold: usize,
    _not_sync: PhantomData<core::cell::Cell<()>>,
}

impl<T: Copy + Send> Consumer<T> {
    /// Try to dequeue one message.
    #[inline]
    pub fn try_pop(&mut self) -> Option<T> {
        if self.local_read == self.cached_write {
            self.cached_write = self.shared.write_index.load(Ordering::Acquire);
            if self.local_read == self.cached_write {
                // Nothing available; make consumed slots visible so the
                // producer is never blocked by lazy read-index publication.
                self.publish_read();
                return None;
            }
        }
        let slot = (self.local_read & self.shared.mask) as usize;
        let message = self.shared.buffer[slot].with(|p| {
            // SAFETY: local_read < cached_write <= producer's published
            // write index, so the slot was fully written before the release
            // store we acquired; only this consumer reads it before it is
            // recycled.
            unsafe { (*p).assume_init() }
        });
        self.local_read += 1;
        self.shared.stats.add_popped(1);
        if self.local_read - self.published_read >= self.read_publish_threshold as u64 {
            self.publish_read();
        }
        Some(message)
    }

    /// Drain up to `max` messages into `out`, returning how many were moved.
    ///
    /// This is the server's inner loop, and it costs O(1) atomics per
    /// *batch*: at most one acquire refresh of the producer's write index,
    /// one pass of plain slot reads, and one release publish of the read
    /// index — however many messages move.
    pub fn pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let mut n = 0usize;
        while n < max {
            let mut visible = (self.cached_write - self.local_read) as usize;
            if visible == 0 {
                self.cached_write = self.shared.write_index.load(Ordering::Acquire);
                visible = (self.cached_write - self.local_read) as usize;
                if visible == 0 {
                    break;
                }
            }
            let take = visible.min(max - n);
            out.reserve(take);
            for i in 0..take {
                let slot = ((self.local_read + i as u64) & self.shared.mask) as usize;
                out.push(self.shared.buffer[slot].with(|p| {
                    // SAFETY: local_read + i < cached_write <= the
                    // producer's published write index, so each slot was
                    // fully written before the release store we acquired;
                    // only this consumer reads it before it is recycled.
                    unsafe { (*p).assume_init() }
                }));
            }
            self.local_read += take as u64;
            n += take;
        }
        if n > 0 {
            self.shared.stats.add_popped(n as u64);
        }
        // Publish consumed slots (and, when empty, anything a lazy try_pop
        // left unpublished) so the producer is never blocked.
        self.publish_read();
        n
    }

    /// Messages currently visible to this consumer.
    pub fn available(&mut self) -> usize {
        self.cached_write = self.shared.write_index.load(Ordering::Acquire);
        (self.cached_write - self.local_read) as usize
    }

    /// Returns `true` when no published messages are waiting.
    pub fn is_empty(&mut self) -> bool {
        self.available() == 0
    }

    /// Whether the producer half still exists.
    pub fn is_peer_alive(&self) -> bool {
        self.shared.producer_alive.load(Ordering::Acquire)
    }

    /// Shared ring statistics.
    pub fn stats(&self) -> &ChannelStats {
        self.shared.stats()
    }

    #[inline]
    fn publish_read(&mut self) {
        if self.local_read != self.published_read {
            self.shared
                .read_index
                .store(self.local_read, Ordering::Release);
            self.published_read = self.local_read;
            self.shared.stats.add_read_index_update();
        }
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.shared.consumer_alive.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_is_preserved() {
        let (mut tx, mut rx) = ring::<u64>(RingConfig::with_capacity(64));
        for i in 0..50u64 {
            tx.try_push(i).unwrap();
        }
        tx.flush();
        for i in 0..50u64 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn messages_invisible_until_flush_threshold_or_flush() {
        // 8-byte messages flush every 8 messages (one cache line).
        let (mut tx, mut rx) = ring::<u64>(RingConfig::with_capacity(64));
        for i in 0..7u64 {
            tx.try_push(i).unwrap();
        }
        assert_eq!(tx.pending_unflushed(), 7);
        assert!(rx.is_empty(), "partial line must not be visible yet");
        tx.try_push(7).unwrap(); // 8th message completes the line
        assert_eq!(tx.pending_unflushed(), 0);
        assert_eq!(rx.available(), 8);
        // Explicit flush publishes partial lines.
        tx.try_push(100).unwrap();
        assert_eq!(rx.available(), 8);
        tx.flush();
        assert_eq!(rx.available(), 9);
    }

    #[test]
    fn queue_full_returns_message_and_recovers() {
        let (mut tx, mut rx) = ring::<u32>(RingConfig::with_capacity(4));
        for i in 0..4u32 {
            tx.try_push(i).unwrap();
        }
        tx.flush();
        let err = tx.try_push(99).unwrap_err();
        assert_eq!(err.message, 99);
        assert!(tx.stats().full_events() >= 1);
        assert_eq!(rx.try_pop(), Some(0));
        // After the consumer publishes its read index, space opens up.
        let mut out = Vec::new();
        rx.pop_batch(&mut out, 16);
        assert_eq!(out, vec![1, 2, 3]);
        tx.try_push(99).unwrap();
        tx.flush();
        assert_eq!(rx.try_pop(), Some(99));
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = ring::<u8>(RingConfig::with_capacity(100));
        assert_eq!(tx.capacity(), 128);
    }

    #[test]
    fn peer_liveness_is_tracked() {
        let (tx, rx) = ring::<u8>(RingConfig::default());
        assert!(tx.is_peer_alive());
        assert!(rx.is_peer_alive());
        drop(rx);
        assert!(!tx.is_peer_alive());
        let (tx2, rx2) = ring::<u8>(RingConfig::default());
        drop(tx2);
        assert!(!rx2.is_peer_alive());
    }

    #[test]
    fn pop_batch_drains_in_order() {
        let (mut tx, mut rx) = ring::<u64>(RingConfig::with_capacity(128));
        for i in 0..100u64 {
            tx.try_push(i).unwrap();
        }
        tx.flush();
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 64), 64);
        assert_eq!(rx.pop_batch(&mut out, 64), 36);
        assert_eq!(out, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn stats_reflect_batching() {
        let (mut tx, mut rx) = ring::<u64>(RingConfig::with_capacity(1024));
        for i in 0..512u64 {
            tx.push_blocking(i);
        }
        tx.flush();
        let mut out = Vec::new();
        while rx.pop_batch(&mut out, 128) > 0 {}
        assert_eq!(out.len(), 512);
        let stats = tx.stats();
        assert_eq!(stats.messages_pushed(), 512);
        assert_eq!(stats.messages_popped(), 512);
        // 8 messages per 64-byte line → about 64 flushes for 512 messages.
        assert!(stats.flushes() <= 70, "flushes={}", stats.flushes());
        assert!(stats.messages_per_flush() >= 7.0);
        // The consumer also batches its read-index updates.
        assert!(stats.read_index_updates() <= stats.messages_popped());
    }

    #[test]
    fn free_slots_accounts_for_unread_messages() {
        let (mut tx, mut rx) = ring::<u64>(RingConfig::with_capacity(16));
        assert_eq!(tx.free_slots(), 16);
        for i in 0..8u64 {
            tx.try_push(i).unwrap();
        }
        tx.flush();
        assert_eq!(tx.free_slots(), 8);
        let mut out = Vec::new();
        rx.pop_batch(&mut out, 8);
        assert_eq!(tx.free_slots(), 16);
    }

    #[test]
    fn cross_thread_transfer_preserves_every_message() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = ring::<u64>(RingConfig::with_capacity(1024));
        let producer = thread::spawn(move || {
            for i in 0..N {
                tx.push_blocking(i);
            }
            tx.flush();
        });
        let consumer = thread::spawn(move || {
            let mut expected = 0u64;
            let mut sum = 0u64;
            while expected < N {
                if let Some(v) = rx.try_pop() {
                    assert_eq!(v, expected, "messages must arrive in order");
                    sum = sum.wrapping_add(v);
                    expected += 1;
                } else {
                    core::hint::spin_loop();
                }
            }
            sum
        });
        producer.join().unwrap();
        let sum = consumer.join().unwrap();
        assert_eq!(sum, (N - 1) * N / 2);
    }

    #[test]
    fn push_batch_publishes_everything_at_once() {
        let (mut tx, mut rx) = ring::<u64>(RingConfig::with_capacity(64));
        let batch: Vec<u64> = (0..20).collect();
        assert_eq!(tx.push_batch(&batch), 20);
        // Batch pushes publish immediately (no partial-line lag).
        assert_eq!(tx.pending_unflushed(), 0);
        assert_eq!(rx.available(), 20);
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 64), 20);
        assert_eq!(out, batch);
        assert_eq!(tx.push_batch(&[]), 0);
    }

    #[test]
    fn push_batch_accepts_partial_on_a_nearly_full_ring() {
        let (mut tx, mut rx) = ring::<u32>(RingConfig::with_capacity(8));
        assert_eq!(tx.push_batch(&[0, 1, 2, 3, 4, 5]), 6);
        let big: Vec<u32> = (6..20).collect();
        // Only two slots remain.
        assert_eq!(tx.push_batch(&big), 2);
        // A completely full ring accepts nothing and records the event.
        assert_eq!(tx.push_batch(&big[2..]), 0);
        assert!(tx.stats().full_events() >= 1);
        let mut out = Vec::new();
        rx.pop_batch(&mut out, 64);
        assert_eq!(out, (0..8).collect::<Vec<u32>>());
        // Read-index publication reopens the whole ring.
        assert_eq!(tx.push_batch(&big[2..]), 8);
    }

    #[test]
    fn batch_transfer_wraps_the_ring_correctly() {
        let (mut tx, mut rx) = ring::<u64>(RingConfig::with_capacity(16));
        let mut expected = 0u64;
        let mut next = 0u64;
        let mut out = Vec::new();
        // Push/pop in lockstep with odd sizes so batches straddle the
        // wrap-around boundary repeatedly.
        for round in 0..200u64 {
            let batch: Vec<u64> = (0..(round % 13 + 1))
                .map(|_| {
                    let v = next;
                    next += 1;
                    v
                })
                .collect();
            let mut sent = 0;
            while sent < batch.len() {
                sent += tx.push_batch(&batch[sent..]);
                out.clear();
                rx.pop_batch(&mut out, 16);
                for got in &out {
                    assert_eq!(*got, expected, "messages stay ordered across wraps");
                    expected += 1;
                }
            }
        }
        loop {
            out.clear();
            if rx.pop_batch(&mut out, 16) == 0 {
                break;
            }
            for got in &out {
                assert_eq!(*got, expected);
                expected += 1;
            }
        }
        assert_eq!(expected, next, "every message arrived exactly once");
    }

    #[test]
    fn batch_drain_costs_one_read_index_update() {
        let (mut tx, mut rx) = ring::<u64>(RingConfig::with_capacity(1024));
        let batch: Vec<u64> = (0..512).collect();
        assert_eq!(tx.push_batch(&batch), 512);
        let flushes_for_batch = tx.stats().flushes();
        assert_eq!(flushes_for_batch, 1, "one publish per producer batch");
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 512), 512);
        assert_eq!(
            rx.stats().read_index_updates(),
            1,
            "one read-index publish per consumer batch"
        );
    }

    #[test]
    fn large_messages_still_round_trip() {
        #[derive(Clone, Copy, PartialEq, Debug)]
        struct Big {
            a: [u64; 6],
        }
        let (mut tx, mut rx) = ring::<Big>(RingConfig::with_capacity(8));
        let msg = Big {
            a: [1, 2, 3, 4, 5, 6],
        };
        tx.try_push(msg).unwrap();
        tx.flush();
        assert_eq!(rx.try_pop(), Some(msg));
    }
}
