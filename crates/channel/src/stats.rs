//! Message-passing statistics.
//!
//! The paper's §6.2 accounting ("CPHASH incurs about 1.5 cache misses, on
//! average, to send and receive two messages per operation") is driven by
//! how often the shared indices and buffer lines actually change hands.
//! Each ring buffer keeps these counters so the harness can report measured
//! flushes-per-message next to the analytic packing numbers.

use cphash_sync::atomic::plain::{AtomicU64, Ordering};

/// Shared counters for one ring buffer (or one single-slot channel).
#[derive(Debug, Default)]
pub struct ChannelStats {
    messages_pushed: AtomicU64,
    messages_popped: AtomicU64,
    flushes: AtomicU64,
    read_index_updates: AtomicU64,
    full_events: AtomicU64,
}

impl ChannelStats {
    /// New zeroed counters.
    pub const fn new() -> Self {
        ChannelStats {
            messages_pushed: AtomicU64::new(0),
            messages_popped: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            read_index_updates: AtomicU64::new(0),
            full_events: AtomicU64::new(0),
        }
    }

    pub(crate) fn add_pushed(&self, n: u64) {
        // relaxed: monotonic stat counter, read only by diagnostics
        self.messages_pushed.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_popped(&self, n: u64) {
        // relaxed: monotonic stat counter, read only by diagnostics
        self.messages_popped.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_flush(&self) {
        // relaxed: monotonic stat counter, read only by diagnostics
        self.flushes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_read_index_update(&self) {
        // relaxed: monotonic stat counter, read only by diagnostics
        self.read_index_updates.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_full_event(&self) {
        // relaxed: monotonic stat counter, read only by diagnostics
        self.full_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Messages written by the producer.
    pub fn messages_pushed(&self) -> u64 {
        // relaxed: monotonic stat counter, read only by diagnostics
        self.messages_pushed.load(Ordering::Relaxed)
    }

    /// Messages consumed by the consumer.
    pub fn messages_popped(&self) -> u64 {
        // relaxed: monotonic stat counter, read only by diagnostics
        self.messages_popped.load(Ordering::Relaxed)
    }

    /// Times the producer published the shared write index.
    pub fn flushes(&self) -> u64 {
        // relaxed: monotonic stat counter, read only by diagnostics
        self.flushes.load(Ordering::Relaxed)
    }

    /// Times the consumer published the shared read index.
    pub fn read_index_updates(&self) -> u64 {
        // relaxed: monotonic stat counter, read only by diagnostics
        self.read_index_updates.load(Ordering::Relaxed)
    }

    /// Times the producer found the queue full.
    pub fn full_events(&self) -> u64 {
        // relaxed: monotonic stat counter, read only by diagnostics
        self.full_events.load(Ordering::Relaxed)
    }

    /// Average messages delivered per producer flush — the measured batching
    /// factor (≈ 8 for fully-packed 8-byte messages).
    pub fn messages_per_flush(&self) -> f64 {
        let flushes = self.flushes();
        if flushes == 0 {
            0.0
        } else {
            self.messages_pushed() as f64 / flushes as f64
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        // relaxed: monotonic stat counter, read only by diagnostics
        self.messages_pushed.store(0, Ordering::Relaxed);
        // relaxed: monotonic stat counter, read only by diagnostics
        self.messages_popped.store(0, Ordering::Relaxed);
        // relaxed: monotonic stat counter, read only by diagnostics
        self.flushes.store(0, Ordering::Relaxed);
        // relaxed: monotonic stat counter, read only by diagnostics
        self.read_index_updates.store(0, Ordering::Relaxed);
        // relaxed: monotonic stat counter, read only by diagnostics
        self.full_events.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = ChannelStats::new();
        s.add_pushed(8);
        s.add_popped(8);
        s.add_flush();
        s.add_read_index_update();
        s.add_full_event();
        assert_eq!(s.messages_pushed(), 8);
        assert_eq!(s.messages_popped(), 8);
        assert_eq!(s.flushes(), 1);
        assert_eq!(s.read_index_updates(), 1);
        assert_eq!(s.full_events(), 1);
        assert!((s.messages_per_flush() - 8.0).abs() < 1e-12);
        s.reset();
        assert_eq!(s.messages_pushed(), 0);
        assert_eq!(s.messages_per_flush(), 0.0);
    }
}
