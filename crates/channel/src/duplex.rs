//! Bidirectional client ↔ server message lanes.
//!
//! "For each server and client pair there are two arrays of buffers — one
//! for each direction of communication" (§3.4).  [`duplex`] builds exactly
//! that: a request ring (client → server) and a response ring
//! (server → client), returning the client-side and server-side endpoints.

use crate::ring::{ring, Consumer, Producer, RingConfig};
use crate::{ChannelStats, QueueFull};

/// Client-side endpoint: sends requests, receives responses.
pub struct DuplexClient<Req, Resp> {
    requests: Producer<Req>,
    responses: Consumer<Resp>,
}

/// Server-side endpoint: receives requests, sends responses.
pub struct DuplexServer<Req, Resp> {
    requests: Consumer<Req>,
    responses: Producer<Resp>,
}

/// Create a connected pair of duplex endpoints with the given ring config
/// used for both directions.
pub fn duplex<Req, Resp>(config: RingConfig) -> (DuplexClient<Req, Resp>, DuplexServer<Req, Resp>)
where
    Req: Copy + Send,
    Resp: Copy + Send,
{
    let (req_tx, req_rx) = ring::<Req>(config);
    let (resp_tx, resp_rx) = ring::<Resp>(config);
    (
        DuplexClient {
            requests: req_tx,
            responses: resp_rx,
        },
        DuplexServer {
            requests: req_rx,
            responses: resp_tx,
        },
    )
}

impl<Req: Copy + Send, Resp: Copy + Send> DuplexClient<Req, Resp> {
    /// Queue a request (published lazily, a cache line at a time).
    #[inline]
    pub fn try_send(&mut self, request: Req) -> Result<(), QueueFull<Req>> {
        self.requests.try_push(request)
    }

    /// Queue a request, spinning until there is room.
    #[inline]
    pub fn send_blocking(&mut self, request: Req) {
        self.requests.push_blocking(request)
    }

    /// Publish any partially-filled request line to the server.
    #[inline]
    pub fn flush(&mut self) {
        self.requests.flush()
    }

    /// Receive one response, if any is visible.
    #[inline]
    pub fn try_recv(&mut self) -> Option<Resp> {
        self.responses.try_pop()
    }

    /// Drain up to `max` responses into `out`.
    #[inline]
    pub fn recv_batch(&mut self, out: &mut Vec<Resp>, max: usize) -> usize {
        self.responses.pop_batch(out, max)
    }

    /// Number of requests written but not yet published.
    pub fn pending_unflushed(&self) -> usize {
        self.requests.pending_unflushed()
    }

    /// Whether the server endpoint still exists.
    pub fn is_server_alive(&self) -> bool {
        self.requests.is_peer_alive()
    }

    /// Statistics of the request ring (client → server).
    pub fn request_stats(&self) -> &ChannelStats {
        self.requests.stats()
    }

    /// Statistics of the response ring (server → client).
    pub fn response_stats(&self) -> &ChannelStats {
        self.responses.stats()
    }
}

impl<Req: Copy + Send, Resp: Copy + Send> DuplexServer<Req, Resp> {
    /// Receive one request, if any is visible.
    #[inline]
    pub fn try_recv(&mut self) -> Option<Req> {
        self.requests.try_pop()
    }

    /// Drain up to `max` requests into `out`.
    #[inline]
    pub fn recv_batch(&mut self, out: &mut Vec<Req>, max: usize) -> usize {
        self.requests.pop_batch(out, max)
    }

    /// Queue a response (published lazily, a cache line at a time).
    #[inline]
    pub fn try_send(&mut self, response: Resp) -> Result<(), QueueFull<Resp>> {
        self.responses.try_push(response)
    }

    /// Queue a response, spinning until there is room.
    #[inline]
    pub fn send_blocking(&mut self, response: Resp) {
        self.responses.push_blocking(response)
    }

    /// Queue and publish a whole batch of responses with one
    /// synchronization round; returns how many were accepted (see
    /// [`crate::Producer::push_batch`]).  This is the server's reply path:
    /// one capacity check and one index publish per *batch* of responses.
    #[inline]
    pub fn send_batch(&mut self, responses: &[Resp]) -> usize {
        self.responses.push_batch(responses)
    }

    /// Publish any partially-filled response line to the client.
    #[inline]
    pub fn flush(&mut self) {
        self.responses.flush()
    }

    /// Number of requests currently visible from the client.
    pub fn pending_requests(&mut self) -> usize {
        self.requests.available()
    }

    /// Whether the client endpoint still exists.
    pub fn is_client_alive(&self) -> bool {
        self.requests.is_peer_alive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn request_response_round_trip() {
        let (mut client, mut server) = duplex::<u64, u64>(RingConfig::with_capacity(64));
        for i in 0..10u64 {
            client.try_send(i).unwrap();
        }
        client.flush();
        let mut reqs = Vec::new();
        server.recv_batch(&mut reqs, 64);
        assert_eq!(reqs.len(), 10);
        for r in &reqs {
            server.try_send(r * 10).unwrap();
        }
        server.flush();
        let mut resps = Vec::new();
        client.recv_batch(&mut resps, 64);
        assert_eq!(resps, (0..10).map(|i| i * 10).collect::<Vec<u64>>());
    }

    #[test]
    fn liveness_both_directions() {
        let (client, server) = duplex::<u8, u8>(RingConfig::default());
        assert!(client.is_server_alive());
        assert!(server.is_client_alive());
        drop(server);
        assert!(!client.is_server_alive());
    }

    #[test]
    fn pipelined_client_keeps_server_busy() {
        // A client queues a large batch before the server ever runs —
        // the "client can continue working and schedule operations" claim.
        const N: u64 = 10_000;
        let (mut client, mut server) = duplex::<u64, u64>(RingConfig::with_capacity(1024));
        let server_thread = thread::spawn(move || {
            let mut processed = 0u64;
            let mut batch = Vec::with_capacity(256);
            while processed < N {
                batch.clear();
                if server.recv_batch(&mut batch, 256) == 0 {
                    core::hint::spin_loop();
                    continue;
                }
                for req in &batch {
                    server.send_blocking(req + 1);
                }
                server.flush();
                processed += batch.len() as u64;
            }
        });
        let mut sent = 0u64;
        let mut received = 0u64;
        let mut sum = 0u64;
        let mut resps = Vec::with_capacity(256);
        while received < N {
            while sent < N && client.try_send(sent).is_ok() {
                sent += 1;
            }
            client.flush();
            resps.clear();
            client.recv_batch(&mut resps, 256);
            for r in &resps {
                sum += r;
                received += 1;
            }
        }
        server_thread.join().unwrap();
        // sum of (i+1) for i in 0..N
        assert_eq!(sum, N * (N + 1) / 2);
        // Batching actually happened: far fewer flushes than messages.
        assert!(client.request_stats().flushes() < N / 4);
    }
}
