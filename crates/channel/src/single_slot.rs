//! The single-value channel design (Figure 3, top).
//!
//! > "In the single buffer implementation, space is allocated for each
//! > client/server pair and when a client want to send a request to a
//! > server, it writes the message to the buffer and waits for the server to
//! > respond. When the server is done processing the message, it updates the
//! > shared location with the result."  (§3.4)
//!
//! The paper keeps this design around as the comparison point: it has lower
//! per-message overhead (no index maintenance) but provides no batching or
//! pipelining, so it loses as soon as clients have a backlog of requests.
//! `ablate_channel` reproduces that crossover.
//
// cphash-lint: hot-path

use core::mem::MaybeUninit;
use std::sync::Arc;

use cphash_sync::atomic::{AtomicU8, Ordering};
use cphash_sync::ModelUnsafeCell;

use cphash_cacheline::CacheAligned;

/// Channel state machine values.
const EMPTY: u8 = 0;
const REQUEST: u8 = 1;
const RESPONSE: u8 = 2;

struct Shared<Req, Resp> {
    state: CacheAligned<AtomicU8>,
    request: ModelUnsafeCell<MaybeUninit<Req>>,
    response: ModelUnsafeCell<MaybeUninit<Resp>>,
}

// SAFETY: access to the two slots is serialized by the `state` machine:
// only the client writes `request` (in EMPTY state) and reads `response`
// (in RESPONSE state); only the server reads `request` and writes
// `response` (in REQUEST state).
unsafe impl<Req: Send, Resp: Send> Send for Shared<Req, Resp> {}
unsafe impl<Req: Send, Resp: Send> Sync for Shared<Req, Resp> {}

/// One request/response slot shared by a single client and a single server.
///
/// Cloning yields another handle to the same slot; exactly one thread must
/// play the client role and one the server role at a time (the CPHash code
/// hands one clone to each side).
pub struct SingleSlotChannel<Req, Resp> {
    shared: Arc<Shared<Req, Resp>>,
}

impl<Req, Resp> Clone for SingleSlotChannel<Req, Resp> {
    fn clone(&self) -> Self {
        SingleSlotChannel {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<Req: Copy + Send, Resp: Copy + Send> SingleSlotChannel<Req, Resp> {
    /// Create an empty channel.
    pub fn new() -> Self {
        SingleSlotChannel {
            shared: Arc::new(Shared {
                state: CacheAligned::new(AtomicU8::new(EMPTY)),
                request: ModelUnsafeCell::new(MaybeUninit::uninit()),
                response: ModelUnsafeCell::new(MaybeUninit::uninit()),
            }),
        }
    }

    /// Client side: publish a request. Spins while a previous exchange is
    /// still in flight (with a well-behaved client this never happens —
    /// the single-slot protocol is strictly one outstanding request).
    pub fn send_request(&self, request: Req) {
        loop {
            if self.shared.state.load(Ordering::Acquire) == EMPTY {
                self.shared.request.with_mut(|p| {
                    // SAFETY: state is EMPTY, so the server is not reading
                    // the request slot and no response is pending; only the
                    // client writes in this state.
                    unsafe { (*p).write(request) };
                });
                self.shared.state.store(REQUEST, Ordering::Release);
                return;
            }
            cphash_sync::spin_hint();
        }
    }

    /// Client side: try to publish a request without spinning.
    /// Returns `false` if an exchange is already in flight.
    pub fn try_send_request(&self, request: Req) -> bool {
        if self.shared.state.load(Ordering::Acquire) != EMPTY {
            return false;
        }
        self.shared.request.with_mut(|p| {
            // SAFETY: as in `send_request`.
            unsafe { (*p).write(request) };
        });
        self.shared.state.store(REQUEST, Ordering::Release);
        true
    }

    /// Client side: spin until the server has responded and take the
    /// response, returning the slot to EMPTY.
    pub fn wait_response(&self) -> Resp {
        loop {
            if let Some(resp) = self.try_take_response() {
                return resp;
            }
            cphash_sync::spin_hint();
        }
    }

    /// Client side: take the response if the server has produced one.
    pub fn try_take_response(&self) -> Option<Resp> {
        if self.shared.state.load(Ordering::Acquire) != RESPONSE {
            return None;
        }
        let resp = self.shared.response.with(|p| {
            // SAFETY: state RESPONSE means the server finished writing the
            // response slot (release store) and will not touch it again
            // until the next REQUEST.
            unsafe { (*p).assume_init() }
        });
        self.shared.state.store(EMPTY, Ordering::Release);
        Some(resp)
    }

    /// Server side: if a request is pending, run `f` on it and publish the
    /// response. Returns `true` if a request was served.
    pub fn try_serve(&self, f: impl FnOnce(Req) -> Resp) -> bool {
        if self.shared.state.load(Ordering::Acquire) != REQUEST {
            return false;
        }
        let req = self.shared.request.with(|p| {
            // SAFETY: state REQUEST means the client finished writing the
            // request slot and is now waiting; only the server reads it
            // here.
            unsafe { (*p).assume_init() }
        });
        let resp = f(req);
        self.shared.response.with_mut(|p| {
            // SAFETY: only the server writes the response slot in REQUEST
            // state.
            unsafe { (*p).write(resp) };
        });
        self.shared.state.store(RESPONSE, Ordering::Release);
        true
    }

    /// A complete client-side round trip: send and wait.
    pub fn call(&self, request: Req) -> Resp {
        self.send_request(request);
        self.wait_response()
    }

    /// Whether a request is currently waiting for the server.
    pub fn has_pending_request(&self) -> bool {
        self.shared.state.load(Ordering::Acquire) == REQUEST
    }
}

impl<Req: Copy + Send, Resp: Copy + Send> Default for SingleSlotChannel<Req, Resp> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn single_threaded_round_trip() {
        let ch = SingleSlotChannel::<u64, u64>::new();
        assert!(!ch.has_pending_request());
        ch.send_request(21);
        assert!(ch.has_pending_request());
        assert!(ch.try_take_response().is_none());
        assert!(ch.try_serve(|x| x * 2));
        assert!(!ch.try_serve(|x| x * 2), "no second pending request");
        assert_eq!(ch.try_take_response(), Some(42));
        assert!(ch.try_take_response().is_none());
    }

    #[test]
    fn try_send_fails_while_in_flight() {
        let ch = SingleSlotChannel::<u8, u8>::new();
        assert!(ch.try_send_request(1));
        assert!(!ch.try_send_request(2));
        assert!(ch.try_serve(|x| x));
        assert!(!ch.try_send_request(3), "response still unconsumed");
        assert_eq!(ch.wait_response(), 1);
        assert!(ch.try_send_request(3));
    }

    #[test]
    fn cross_thread_request_response() {
        let ch = SingleSlotChannel::<u64, u64>::new();
        let server = ch.clone();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let server_thread = thread::spawn(move || {
            let mut served = 0u64;
            while !stop2.load(Ordering::Relaxed) {
                if server.try_serve(|x| x + 1) {
                    served += 1;
                }
            }
            served
        });
        let mut expected_served = 0;
        for i in 0..10_000u64 {
            assert_eq!(ch.call(i), i + 1);
            expected_served += 1;
        }
        stop.store(true, Ordering::Relaxed);
        let served = server_thread.join().unwrap();
        assert_eq!(served, expected_served);
    }
}
