//! Property-based and adversarial tests for the ring-buffer channel: no
//! message may ever be lost, duplicated or reordered, no matter how pushes,
//! flushes and pops interleave, and the capacity bound must hold exactly.

use proptest::prelude::*;

use cphash_channel::{duplex, ring, RingConfig};

/// One scripted action against the ring.
#[derive(Debug, Clone, Copy)]
enum Action {
    Push(u8),
    Flush,
    Pop(u8),
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (1u8..32).prop_map(Action::Push),
        Just(Action::Flush),
        (1u8..32).prop_map(Action::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scripted_interleavings_never_lose_or_reorder(
        actions in prop::collection::vec(action(), 1..200),
        capacity in 4usize..128,
    ) {
        let (mut tx, mut rx) = ring::<u64>(RingConfig::with_capacity(capacity));
        let real_capacity = tx.capacity() as u64;
        let mut pushed = 0u64;
        let mut popped = Vec::new();
        for act in actions {
            match act {
                Action::Push(n) => {
                    for _ in 0..n {
                        if tx.try_push(pushed).is_ok() {
                            pushed += 1;
                        }
                    }
                    // Outstanding (accepted but unconsumed) messages can
                    // never exceed the ring capacity.
                    prop_assert!(pushed - popped.len() as u64 <= real_capacity);
                }
                Action::Flush => tx.flush(),
                Action::Pop(n) => {
                    for _ in 0..n {
                        match rx.try_pop() {
                            Some(v) => popped.push(v),
                            None => break,
                        }
                    }
                }
            }
        }
        tx.flush();
        rx.pop_batch(&mut popped, usize::MAX);
        prop_assert_eq!(popped.len() as u64, pushed);
        for (expected, got) in popped.iter().enumerate() {
            prop_assert_eq!(*got, expected as u64);
        }
    }

    #[test]
    fn duplex_round_trips_arbitrary_batches(batches in prop::collection::vec(1usize..200, 1..20)) {
        let (mut client, mut server) = duplex::<u64, u64>(RingConfig::with_capacity(256));
        let mut next = 0u64;
        for batch in batches {
            let mut expected = Vec::with_capacity(batch);
            for _ in 0..batch {
                client.send_blocking(next);
                expected.push(next + 7);
                next += 1;
            }
            client.flush();
            // Serve everything.
            let mut served = 0;
            let mut reqs = Vec::new();
            while served < batch {
                reqs.clear();
                let n = server.recv_batch(&mut reqs, batch);
                for r in &reqs {
                    server.send_blocking(r + 7);
                }
                server.flush();
                served += n;
            }
            // Collect all responses.
            let mut resps = Vec::new();
            while resps.len() < batch {
                client.recv_batch(&mut resps, batch);
            }
            prop_assert_eq!(resps, expected);
        }
    }
}

/// Two real threads hammer one ring with randomized pacing; every message
/// must arrive exactly once, in order.  (Not a proptest because it spawns
/// threads; randomness comes from thread scheduling.)
#[test]
fn cross_thread_fuzz_with_bursty_producer() {
    const N: u64 = 300_000;
    let (mut tx, mut rx) = ring::<u64>(RingConfig::with_capacity(512));
    let producer = std::thread::spawn(move || {
        let mut sent = 0u64;
        let mut burst = 1usize;
        while sent < N {
            for _ in 0..burst {
                if sent < N {
                    tx.push_blocking(sent);
                    sent += 1;
                }
            }
            tx.flush();
            burst = (burst * 7 + 3) % 61 + 1;
            if burst.is_multiple_of(9) {
                std::thread::yield_now();
            }
        }
        tx.flush();
    });
    let consumer = std::thread::spawn(move || {
        let mut expected = 0u64;
        let mut batch = Vec::with_capacity(256);
        while expected < N {
            batch.clear();
            if rx.pop_batch(&mut batch, 256) == 0 {
                std::hint::spin_loop();
                continue;
            }
            for v in &batch {
                assert_eq!(*v, expected, "lost or reordered message");
                expected += 1;
            }
        }
        expected
    });
    producer.join().unwrap();
    assert_eq!(consumer.join().unwrap(), N);
}
