//! Property/fuzz tests for every kvproto decoder: arbitrary byte streams —
//! truncated, garbage, version-skewed — fed in arbitrary chunkings must
//! yield `DecodeError` or valid frames, never a panic and never a silent
//! desync (decoding must be deterministic in the bytes, not the chunking).
//!
//! The vendored proptest shim is deterministic (each case seeds its own
//! xorshift stream), so CI runs are reproducible by construction.

use bytes::BytesMut;
use cphash_kvproto::{
    encode_hello, encode_insert, encode_lookup, encode_op, encode_reply, encode_resize_paced,
    OpFrame, Reply, ReplyDecoder, RequestDecoder, ResponseDecoder, ServerDecoder, ServerEvent,
    VERSION_2,
};
use proptest::prelude::*;

/// Feed `bytes` to a fresh server decoder in one gulp, collecting events
/// until exhaustion or error.
fn decode_all(bytes: &[u8]) -> (Vec<ServerEvent>, bool) {
    let mut decoder = ServerDecoder::new();
    decoder.feed(bytes);
    let mut events = Vec::new();
    let errored = decoder.drain(&mut events).is_err();
    (events, errored)
}

/// Feed `bytes` in chunks of `chunk` bytes, collecting the same way.
fn decode_chunked(bytes: &[u8], chunk: usize) -> (Vec<ServerEvent>, bool) {
    let mut decoder = ServerDecoder::new();
    let mut events = Vec::new();
    for piece in bytes.chunks(chunk.max(1)) {
        decoder.feed(piece);
        if decoder.drain(&mut events).is_err() {
            return (events, true);
        }
    }
    (events, false)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512 })]

    /// Pure garbage: any byte soup either errors or waits for more bytes —
    /// and chunking never changes the outcome. (Catches panics from
    /// out-of-bounds slicing, overflow on length fields, etc.)
    #[test]
    fn garbage_never_panics_and_chunking_is_invisible(
        args in (prop::collection::vec(any::<u8>(), 0..512), 1usize..64),
    ) {
        let (bytes, chunk) = args;
        let (whole, whole_err) = decode_all(&bytes);
        let (pieces, pieces_err) = decode_chunked(&bytes, chunk);
        prop_assert_eq!(whole_err, pieces_err);
        prop_assert_eq!(whole, pieces);

        // Client-side decoders must hold the same bar.
        let mut reply = ReplyDecoder::new();
        reply.feed(&bytes);
        while let Ok(Some(_)) = reply.next_reply() {}
        let mut v1req = RequestDecoder::new();
        v1req.feed(&bytes);
        let mut sink = Vec::new();
        let _ = v1req.drain(&mut sink);
        let mut v1resp = ResponseDecoder::new();
        v1resp.feed(&bytes);
        while let Ok(Some(_)) = v1resp.next_response() {}
    }

    /// Valid streams (v1 and v2, mixed op shapes) decode to exactly the
    /// frames that were encoded, under any chunking, with garbage appended
    /// after a truncation point never reinterpreted as a frame boundary.
    #[test]
    fn valid_streams_round_trip_then_truncate_cleanly(
        args in (
            1u8..5,
            prop::collection::vec((any::<bool>(), any::<u64>(), prop::collection::vec(any::<u8>(), 0..48)), 1..12),
            1usize..48,
            0usize..16,
        ),
    ) {
        let (hello_version, keys, chunk, cut_back) = args;
        // Build a valid v2 session: hello + a mix of typed ops.
        let mut wire = BytesMut::new();
        encode_hello(&mut wire, hello_version);
        let mut expected = vec![ServerEvent::Hello { requested: hello_version }];
        for (i, (byte_key, key, value)) in keys.iter().enumerate() {
            let frame = match (i % 4, byte_key) {
                (0, false) => OpFrame::lookup(*key),
                (0, true) => OpFrame::lookup_bytes(key.to_le_bytes().to_vec()),
                (1, false) => OpFrame::insert(*key, value.clone()),
                (1, true) => OpFrame::insert_bytes(key.to_le_bytes().to_vec(), value.clone()),
                (2, false) => OpFrame::delete(*key),
                (2, true) => OpFrame::delete_bytes(key.to_le_bytes().to_vec()),
                _ => OpFrame::resize_paced(*key % 64, (*key >> 32) as u32),
            };
            encode_op(&mut wire, &frame);
            expected.push(ServerEvent::Op(cphash_kvproto::ServerOp {
                frame,
                wants_response: true,
            }));
        }

        let (events, errored) = decode_chunked(&wire, chunk);
        prop_assert!(!errored, "a valid stream must not error");
        prop_assert_eq!(&events, &expected);

        // Truncate the tail: decoding must yield a prefix of the expected
        // events and no error (incomplete ≠ invalid).
        let cut = wire.len().saturating_sub(cut_back % wire.len().max(1));
        let (truncated, errored) = decode_chunked(&wire[..cut], chunk);
        prop_assert!(!errored);
        prop_assert!(truncated.len() <= expected.len());
        prop_assert_eq!(&truncated[..], &expected[..truncated.len()]);
    }

    /// v1 framing holds the same properties through the same decoder.
    #[test]
    fn v1_streams_round_trip_under_chunking(
        args in (
            prop::collection::vec((0u8..3, any::<u64>(), prop::collection::vec(any::<u8>(), 0..32)), 1..12),
            1usize..32,
        ),
    ) {
        let (ops, chunk) = args;
        let mut wire = BytesMut::new();
        let mut expected = Vec::new();
        for (kind, key, value) in &ops {
            match kind {
                0 => {
                    encode_lookup(&mut wire, *key);
                    expected.push(ServerEvent::Op(cphash_kvproto::ServerOp {
                        frame: OpFrame::lookup(*key),
                        wants_response: true,
                    }));
                }
                1 => {
                    encode_insert(&mut wire, *key, value);
                    expected.push(ServerEvent::Op(cphash_kvproto::ServerOp {
                        frame: OpFrame::insert(*key, value.clone()),
                        wants_response: false,
                    }));
                }
                _ => {
                    encode_resize_paced(&mut wire, *key & 0xFFFF, (*key >> 32) as u32);
                    expected.push(ServerEvent::Op(cphash_kvproto::ServerOp {
                        frame: OpFrame::resize_paced(*key & 0xFFFF, (*key >> 32) as u32),
                        wants_response: true,
                    }));
                }
            }
        }
        let (events, errored) = decode_chunked(&wire, chunk);
        prop_assert!(!errored);
        prop_assert_eq!(&events, &expected);
    }

    /// Version-skewed and bit-flipped streams: corrupting one byte of a
    /// valid stream must produce either a clean error, the original
    /// decoding, or a different-but-valid decoding — never a panic. (The
    /// decoder cannot detect every corruption — lengths and key bytes are
    /// data — but it must stay memory-safe and deterministic.)
    #[test]
    fn bit_flips_never_panic(
        args in (
            0usize..256,
            0u8..8,
            prop::collection::vec(any::<u64>(), 1..8),
            1usize..32,
        ),
    ) {
        let (flip_at, flip_bit, keys, chunk) = args;
        let mut wire = BytesMut::new();
        encode_hello(&mut wire, VERSION_2);
        for key in &keys {
            encode_op(&mut wire, &OpFrame::insert_bytes(key.to_le_bytes().to_vec(), key.to_le_bytes().to_vec()));
        }
        let mut bytes = wire.to_vec();
        let at = flip_at % bytes.len();
        bytes[at] ^= 1 << flip_bit;
        // Both gulped and chunked decoding agree and terminate.
        let (whole, whole_err) = decode_all(&bytes);
        let (pieces, pieces_err) = decode_chunked(&bytes, chunk);
        prop_assert_eq!(whole_err, pieces_err);
        prop_assert_eq!(whole, pieces);
    }

    /// Reply streams: round trip + bit-flip safety for the client decoder.
    #[test]
    fn reply_streams_round_trip_and_survive_flips(
        args in (
            prop::collection::vec(prop::option::of(prop::collection::vec(any::<u8>(), 0..32)), 1..8),
            prop::option::of((0usize..128, 0u8..8)),
            1usize..16,
        ),
    ) {
        let (values, flip, chunk) = args;
        let mut wire = BytesMut::new();
        let mut expected = Vec::new();
        for v in &values {
            let reply = match v {
                Some(bytes) => Reply::ok_value(bytes.clone()),
                None => Reply::miss(),
            };
            encode_reply(&mut wire, &reply);
            expected.push(reply);
        }
        let mut bytes = wire.to_vec();
        if let Some((at, bit)) = flip {
            let at = at % bytes.len();
            bytes[at] ^= 1 << bit;
        }
        let mut decoder = ReplyDecoder::new();
        let mut decoded = Vec::new();
        let mut errored = false;
        for piece in bytes.chunks(chunk) {
            decoder.feed(piece);
            loop {
                match decoder.next_reply() {
                    Ok(Some(r)) => decoded.push(r),
                    Ok(None) => break,
                    Err(_) => {
                        errored = true;
                        break;
                    }
                }
            }
            if errored {
                break;
            }
        }
        if flip.is_none() {
            prop_assert!(!errored);
            prop_assert_eq!(decoded, expected);
        }
        // With a flip: no panic is the property; outcomes may differ.
    }
}
