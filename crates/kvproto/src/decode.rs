//! Incremental decoders for streamed frames.
//!
//! CPSERVER's client threads "gather as many requests as possible to perform
//! them in a single batch" (§4.1), which means they read whatever bytes TCP
//! delivers and must handle frames that arrive split across reads.  The
//! decoders here consume from a growable byte buffer and yield complete
//! frames as they become available.

use bytes::{Buf, BytesMut};

use crate::frame::{Request, RequestKind, Response, REQUEST_HEADER_BYTES, RESPONSE_HEADER_BYTES};
use crate::v2::{
    OpFrame, OpKind, Reply, Status, WireKey, FLAG_BYTE_KEY, HELLO_BYTES, OP_HEADER_BYTES,
    REPLY_HEADER_BYTES, VERSION_1, VERSION_2,
};
use crate::{MAX_KEY, MAX_VALUE_BYTES};

/// Why decoding failed (the connection should be dropped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Value size field exceeds [`MAX_VALUE_BYTES`].
    ValueTooLarge(u64),
    /// First byte looked like a handshake but the magic did not match.
    BadMagic(u8),
    /// Handshake version byte is not a version this peer can speak.
    BadVersion(u8),
    /// Unknown reply status byte.
    BadStatus(u8),
    /// Frame fields contradict each other (e.g. a byte-key flag with a
    /// nonzero hash-key field, or a hash-key frame with a key length).
    Malformed,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::BadOpcode(b) => write!(f, "unknown opcode byte {b:#04x}"),
            DecodeError::ValueTooLarge(n) => {
                write!(f, "value of {n} bytes exceeds the protocol limit")
            }
            DecodeError::BadMagic(b) => write!(f, "bad handshake magic (first byte {b:#04x})"),
            DecodeError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            DecodeError::BadStatus(b) => write!(f, "unknown reply status byte {b:#04x}"),
            DecodeError::Malformed => f.write_str("malformed frame"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Streaming decoder for request frames (server side).
#[derive(Debug, Default)]
pub struct RequestDecoder {
    buffer: BytesMut,
}

impl RequestDecoder {
    /// New empty decoder.
    pub fn new() -> Self {
        RequestDecoder {
            buffer: BytesMut::with_capacity(4096),
        }
    }

    /// Feed freshly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Try to decode the next complete request.  `Ok(None)` means more bytes
    /// are needed.
    pub fn next_request(&mut self) -> Result<Option<Request>, DecodeError> {
        // Validate the opcode as soon as it is buffered, before waiting for
        // the rest of the header: a v2 client probing with HELLO (4 bytes,
        // leading 0xCF) must be rejected immediately, not after its
        // handshake timeout expires waiting for byte 13.
        let Some(&opcode) = self.buffer.first() else {
            return Ok(None);
        };
        let kind = RequestKind::from_byte(opcode).ok_or(DecodeError::BadOpcode(opcode))?;
        if self.buffer.len() < REQUEST_HEADER_BYTES {
            return Ok(None);
        }
        let key = u64::from_le_bytes(self.buffer[1..9].try_into().expect("header present"));
        let size =
            u32::from_le_bytes(self.buffer[9..13].try_into().expect("header present")) as usize;
        if size > MAX_VALUE_BYTES {
            return Err(DecodeError::ValueTooLarge(size as u64));
        }
        let body = if kind == RequestKind::Insert { size } else { 0 };
        if self.buffer.len() < REQUEST_HEADER_BYTES + body {
            return Ok(None);
        }
        self.buffer.advance(REQUEST_HEADER_BYTES);
        let value = self.buffer.split_to(body).to_vec();
        Ok(Some(Request { kind, key, value }))
    }

    /// Decode every complete request currently buffered.
    pub fn drain(&mut self, out: &mut Vec<Request>) -> Result<usize, DecodeError> {
        let before = out.len();
        while let Some(req) = self.next_request()? {
            out.push(req);
        }
        Ok(out.len() - before)
    }
}

/// Streaming decoder for response frames (client side).
#[derive(Debug, Default)]
pub struct ResponseDecoder {
    buffer: BytesMut,
}

impl ResponseDecoder {
    /// New empty decoder.
    pub fn new() -> Self {
        ResponseDecoder {
            buffer: BytesMut::with_capacity(4096),
        }
    }

    /// Feed freshly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    /// Try to decode the next complete response.  `Ok(None)` means more
    /// bytes are needed.
    pub fn next_response(&mut self) -> Result<Option<Response>, DecodeError> {
        if self.buffer.len() < RESPONSE_HEADER_BYTES {
            return Ok(None);
        }
        let size =
            u32::from_le_bytes(self.buffer[0..4].try_into().expect("header present")) as usize;
        if size > MAX_VALUE_BYTES {
            return Err(DecodeError::ValueTooLarge(size as u64));
        }
        if self.buffer.len() < RESPONSE_HEADER_BYTES + size {
            return Ok(None);
        }
        self.buffer.advance(RESPONSE_HEADER_BYTES);
        let value = self.buffer.split_to(size).to_vec();
        Ok(Some(Response {
            value: if size == 0 { None } else { Some(value) },
        }))
    }
}

/// A decoded server-side event: either a request, or the connection's
/// one-time handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerEvent {
    /// The client sent a HELLO requesting `version`; the server must answer
    /// with a HELLO-ACK carrying the negotiated version (and, if it
    /// negotiates down to v1, call [`ServerDecoder::set_wire_version`]).
    Hello {
        /// The version the client asked for.
        requested: u8,
    },
    /// A complete request.
    Op(ServerOp),
}

/// One decoded request plus its response obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerOp {
    /// The operation.
    pub frame: OpFrame,
    /// Whether the client expects a reply frame.  Every v2 request does;
    /// v1 INSERTs are fire-and-forget ("the server silently performs INSERT
    /// requests", §4.1).
    pub wants_response: bool,
}

/// Which framing a connection speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WireMode {
    /// Nothing received yet: the first byte decides.
    Detect,
    /// Legacy unversioned frames.
    V1,
    /// Versioned typed frames.
    V2,
}

/// Streaming, version-negotiating decoder for the server side of a
/// connection.
///
/// The first byte received decides the mode: a v1 opcode (1..=3) locks the
/// connection to v1 framing; the handshake magic starts a v2 session.
/// Anything else is an error and the connection should be dropped — which
/// is exactly what a pre-versioning server did with the magic byte, and
/// what v2 clients rely on for transparent fallback.
#[derive(Debug)]
pub struct ServerDecoder {
    buffer: BytesMut,
    mode: WireMode,
    hello_seen: bool,
}

impl Default for ServerDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerDecoder {
    /// New decoder in detection state.
    pub fn new() -> Self {
        ServerDecoder {
            buffer: BytesMut::with_capacity(4096),
            mode: WireMode::Detect,
            hello_seen: false,
        }
    }

    /// Feed freshly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// The framing this connection resolved to (`None` until the first byte
    /// arrives): [`VERSION_1`] or [`VERSION_2`].
    pub fn wire_version(&self) -> Option<u8> {
        match self.mode {
            WireMode::Detect => None,
            WireMode::V1 => Some(VERSION_1),
            WireMode::V2 => Some(VERSION_2),
        }
    }

    /// Force the framing for subsequent bytes.  Servers that negotiate a
    /// HELLO down to v1 call this so the client's following v1 frames parse.
    pub fn set_wire_version(&mut self, version: u8) {
        self.mode = if version <= VERSION_1 {
            WireMode::V1
        } else {
            WireMode::V2
        };
    }

    /// Try to decode the next event.  `Ok(None)` means more bytes are
    /// needed.
    pub fn next_event(&mut self) -> Result<Option<ServerEvent>, DecodeError> {
        loop {
            match self.mode {
                WireMode::Detect => {
                    let Some(&first) = self.buffer.first() else {
                        return Ok(None);
                    };
                    if first == crate::v2::MAGIC[0] {
                        self.mode = WireMode::V2;
                    } else if RequestKind::from_byte(first).is_some() {
                        self.mode = WireMode::V1;
                    } else {
                        return Err(DecodeError::BadOpcode(first));
                    }
                }
                WireMode::V1 => {
                    return Ok(self.next_v1()?.map(ServerEvent::Op));
                }
                WireMode::V2 => {
                    if !self.hello_seen {
                        if self.buffer.len() < HELLO_BYTES {
                            return Ok(None);
                        }
                        let hello: [u8; HELLO_BYTES] = self.buffer[..HELLO_BYTES]
                            .try_into()
                            .expect("length checked");
                        let requested = crate::v2::parse_hello(&hello)?;
                        self.buffer.advance(HELLO_BYTES);
                        self.hello_seen = true;
                        return Ok(Some(ServerEvent::Hello { requested }));
                    }
                    return Ok(self.next_v2()?.map(ServerEvent::Op));
                }
            }
        }
    }

    /// Decode every complete event currently buffered.
    pub fn drain(&mut self, out: &mut Vec<ServerEvent>) -> Result<usize, DecodeError> {
        let before = out.len();
        while let Some(event) = self.next_event()? {
            out.push(event);
        }
        Ok(out.len() - before)
    }

    fn next_v1(&mut self) -> Result<Option<ServerOp>, DecodeError> {
        if self.buffer.len() < REQUEST_HEADER_BYTES {
            return Ok(None);
        }
        let opcode = self.buffer[0];
        let kind = RequestKind::from_byte(opcode).ok_or(DecodeError::BadOpcode(opcode))?;
        let key = u64::from_le_bytes(self.buffer[1..9].try_into().expect("header present"));
        let size =
            u32::from_le_bytes(self.buffer[9..13].try_into().expect("header present")) as usize;
        if size > MAX_VALUE_BYTES {
            return Err(DecodeError::ValueTooLarge(size as u64));
        }
        let body = if kind == RequestKind::Insert { size } else { 0 };
        if self.buffer.len() < REQUEST_HEADER_BYTES + body {
            return Ok(None);
        }
        self.buffer.advance(REQUEST_HEADER_BYTES);
        let value = self.buffer.split_to(body).to_vec();
        let (kind, wants_response) = match kind {
            RequestKind::Lookup => (OpKind::Lookup, true),
            RequestKind::Insert => (OpKind::Insert, false),
            RequestKind::Resize => (OpKind::Resize, true),
        };
        Ok(Some(ServerOp {
            frame: OpFrame {
                kind,
                // RESIZE keys pack partitions+pacing and must not be masked.
                key: WireKey::Hash(if kind == OpKind::Resize {
                    key
                } else {
                    key & MAX_KEY
                }),
                value,
            },
            wants_response,
        }))
    }

    fn next_v2(&mut self) -> Result<Option<ServerOp>, DecodeError> {
        if self.buffer.len() < OP_HEADER_BYTES {
            return Ok(None);
        }
        let opcode = self.buffer[0];
        let kind = OpKind::from_byte(opcode).ok_or(DecodeError::BadOpcode(opcode))?;
        let flags = self.buffer[1];
        let key_len =
            u16::from_le_bytes(self.buffer[2..4].try_into().expect("header present")) as usize;
        let val_len =
            u32::from_le_bytes(self.buffer[4..8].try_into().expect("header present")) as usize;
        let key_field = u64::from_le_bytes(self.buffer[8..16].try_into().expect("header present"));
        if val_len > MAX_VALUE_BYTES {
            return Err(DecodeError::ValueTooLarge(val_len as u64));
        }
        let byte_key = flags & FLAG_BYTE_KEY != 0;
        // Contradictory frames mean a desynced or buggy peer; drop it
        // rather than guessing (unknown future flag bits are also refused:
        // they could change the meaning of the fields we just parsed).
        if flags & !FLAG_BYTE_KEY != 0
            || (byte_key && key_field != 0)
            || (!byte_key && key_len != 0)
        {
            return Err(DecodeError::Malformed);
        }
        if self.buffer.len() < OP_HEADER_BYTES + key_len + val_len {
            return Ok(None);
        }
        self.buffer.advance(OP_HEADER_BYTES);
        let key = if byte_key {
            WireKey::Bytes(self.buffer.split_to(key_len).to_vec())
        } else {
            // RESIZE keys pack partitions+pacing and must not be masked.
            WireKey::Hash(if kind == OpKind::Resize {
                key_field
            } else {
                key_field & MAX_KEY
            })
        };
        let value = self.buffer.split_to(val_len).to_vec();
        Ok(Some(ServerOp {
            frame: OpFrame { kind, key, value },
            wants_response: true,
        }))
    }
}

/// Streaming decoder for v2 reply frames (client side).
#[derive(Debug, Default)]
pub struct ReplyDecoder {
    buffer: BytesMut,
}

impl ReplyDecoder {
    /// New empty decoder.
    pub fn new() -> Self {
        ReplyDecoder {
            buffer: BytesMut::with_capacity(4096),
        }
    }

    /// Feed freshly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Try to decode the next complete reply.  `Ok(None)` means more bytes
    /// are needed.
    pub fn next_reply(&mut self) -> Result<Option<Reply>, DecodeError> {
        if self.buffer.len() < REPLY_HEADER_BYTES {
            return Ok(None);
        }
        let status =
            Status::from_byte(self.buffer[0]).ok_or(DecodeError::BadStatus(self.buffer[0]))?;
        let code = crate::v2::ErrCode::from_byte(self.buffer[1]);
        let val_len =
            u32::from_le_bytes(self.buffer[4..8].try_into().expect("header present")) as usize;
        if val_len > MAX_VALUE_BYTES {
            return Err(DecodeError::ValueTooLarge(val_len as u64));
        }
        if self.buffer.len() < REPLY_HEADER_BYTES + val_len {
            return Ok(None);
        }
        self.buffer.advance(REPLY_HEADER_BYTES);
        let value = self.buffer.split_to(val_len).to_vec();
        Ok(Some(Reply {
            status,
            code,
            value,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_insert, encode_lookup, encode_response};
    use bytes::{BufMut, BytesMut};

    #[test]
    fn decodes_back_to_back_requests() {
        let mut wire = BytesMut::new();
        encode_lookup(&mut wire, 11);
        encode_insert(&mut wire, 22, b"hello");
        encode_lookup(&mut wire, 33);

        let mut dec = RequestDecoder::new();
        dec.feed(&wire);
        let mut out = Vec::new();
        assert_eq!(dec.drain(&mut out).unwrap(), 3);
        assert_eq!(out[0], Request::lookup(11));
        assert_eq!(out[1], Request::insert(22, b"hello".to_vec()));
        assert_eq!(out[2], Request::lookup(33));
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn handles_bytes_arriving_one_at_a_time() {
        let mut wire = BytesMut::new();
        encode_insert(&mut wire, 7, b"split-value");
        let mut dec = RequestDecoder::new();
        let mut decoded = Vec::new();
        for &b in wire.iter() {
            dec.feed(&[b]);
            dec.drain(&mut decoded).unwrap();
        }
        assert_eq!(decoded, vec![Request::insert(7, b"split-value".to_vec())]);
    }

    #[test]
    fn rejects_bad_opcode_and_oversized_values() {
        let mut dec = RequestDecoder::new();
        dec.feed(&[0xFFu8; REQUEST_HEADER_BYTES]);
        assert_eq!(dec.next_request(), Err(DecodeError::BadOpcode(0xFF)));

        let mut dec = RequestDecoder::new();
        let mut frame = vec![2u8];
        frame.extend_from_slice(&5u64.to_le_bytes());
        frame.extend_from_slice(&(u32::MAX).to_le_bytes());
        dec.feed(&frame);
        assert!(matches!(
            dec.next_request(),
            Err(DecodeError::ValueTooLarge(_))
        ));
        assert!(format!("{}", DecodeError::BadOpcode(3)).contains("opcode"));
    }

    #[test]
    fn response_round_trip_hit_and_miss() {
        let mut wire = BytesMut::new();
        encode_response(&mut wire, Some(b"v1"));
        encode_response(&mut wire, None);
        encode_response(&mut wire, Some(b""));
        let mut dec = ResponseDecoder::new();
        dec.feed(&wire);
        assert_eq!(
            dec.next_response().unwrap(),
            Some(Response {
                value: Some(b"v1".to_vec())
            })
        );
        assert_eq!(dec.next_response().unwrap(), Some(Response { value: None }));
        // A present-but-empty value is indistinguishable from a miss in this
        // protocol (size 0), exactly as in the paper's description.
        assert_eq!(dec.next_response().unwrap(), Some(Response { value: None }));
        assert_eq!(dec.next_response().unwrap(), None);
    }

    #[test]
    fn server_decoder_detects_v1_from_the_first_byte() {
        let mut wire = BytesMut::new();
        encode_lookup(&mut wire, 11);
        encode_insert(&mut wire, 22, b"hello");
        let mut dec = ServerDecoder::new();
        dec.feed(&wire);
        assert_eq!(dec.wire_version(), None);
        let mut events = Vec::new();
        assert_eq!(dec.drain(&mut events).unwrap(), 2);
        assert_eq!(dec.wire_version(), Some(VERSION_1));
        assert_eq!(
            events[0],
            ServerEvent::Op(ServerOp {
                frame: OpFrame::lookup(11),
                wants_response: true
            })
        );
        assert_eq!(
            events[1],
            ServerEvent::Op(ServerOp {
                frame: OpFrame::insert(22, b"hello".to_vec()),
                wants_response: false
            })
        );
    }

    #[test]
    fn server_decoder_handshakes_then_decodes_v2_ops() {
        let mut wire = BytesMut::new();
        crate::v2::encode_hello(&mut wire, VERSION_2);
        crate::v2::encode_op(
            &mut wire,
            &OpFrame::insert_bytes(b"k".to_vec(), b"v".to_vec()),
        );
        crate::v2::encode_op(&mut wire, &OpFrame::delete(9));
        let mut dec = ServerDecoder::new();
        // One byte at a time: every partial state must hold.
        let mut events = Vec::new();
        for &b in wire.iter() {
            dec.feed(&[b]);
            dec.drain(&mut events).unwrap();
        }
        assert_eq!(dec.wire_version(), Some(VERSION_2));
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[0],
            ServerEvent::Hello {
                requested: VERSION_2
            }
        );
        assert_eq!(
            events[1],
            ServerEvent::Op(ServerOp {
                frame: OpFrame::insert_bytes(b"k".to_vec(), b"v".to_vec()),
                wants_response: true
            })
        );
        assert_eq!(
            events[2],
            ServerEvent::Op(ServerOp {
                frame: OpFrame::delete(9),
                wants_response: true
            })
        );
    }

    #[test]
    fn server_decoder_can_negotiate_down_to_v1_framing() {
        let mut dec = ServerDecoder::new();
        let mut wire = BytesMut::new();
        crate::v2::encode_hello(&mut wire, 7); // future version
        dec.feed(&wire);
        assert_eq!(
            dec.next_event().unwrap(),
            Some(ServerEvent::Hello { requested: 7 })
        );
        // Server decides v1 is the common ground; subsequent frames are v1.
        dec.set_wire_version(VERSION_1);
        let mut wire = BytesMut::new();
        encode_lookup(&mut wire, 5);
        dec.feed(&wire);
        assert_eq!(
            dec.next_event().unwrap(),
            Some(ServerEvent::Op(ServerOp {
                frame: OpFrame::lookup(5),
                wants_response: true
            }))
        );
    }

    #[test]
    fn server_decoder_rejects_garbage_and_contradictions() {
        // Garbage first byte.
        let mut dec = ServerDecoder::new();
        dec.feed(&[0x77]);
        assert_eq!(dec.next_event(), Err(DecodeError::BadOpcode(0x77)));

        // Bad magic tail.
        let mut dec = ServerDecoder::new();
        dec.feed(&[crate::v2::MAGIC[0], b'X', b'P', 2]);
        assert!(matches!(dec.next_event(), Err(DecodeError::BadMagic(_))));

        // Byte-key flag with a nonzero hash field.
        let mut dec = ServerDecoder::new();
        let mut wire = BytesMut::new();
        crate::v2::encode_hello(&mut wire, VERSION_2);
        wire.put_u8(OpKind::Lookup as u8);
        wire.put_u8(FLAG_BYTE_KEY);
        wire.put_u16_le(1);
        wire.put_u32_le(0);
        wire.put_u64_le(5);
        wire.put_u8(b'k');
        dec.feed(&wire);
        assert_eq!(
            dec.next_event().unwrap(),
            Some(ServerEvent::Hello {
                requested: VERSION_2
            })
        );
        assert_eq!(dec.next_event(), Err(DecodeError::Malformed));
    }

    #[test]
    fn reply_decoder_round_trips_every_status() {
        use crate::v2::{encode_reply, ErrCode};
        let replies = [
            Reply::ok_value(b"value".to_vec()),
            Reply::ok(),
            Reply::miss(),
            Reply::retry(),
            Reply::err(ErrCode::Capacity, b"no room".to_vec()),
        ];
        let mut wire = BytesMut::new();
        for r in &replies {
            encode_reply(&mut wire, r);
        }
        let mut dec = ReplyDecoder::new();
        let mut decoded = Vec::new();
        for &b in wire.iter() {
            dec.feed(&[b]);
            while let Some(r) = dec.next_reply().unwrap() {
                decoded.push(r);
            }
        }
        assert_eq!(decoded, replies);
        assert_eq!(dec.buffered(), 0);
        let mut dec = ReplyDecoder::new();
        dec.feed(&[9u8; REPLY_HEADER_BYTES]);
        assert_eq!(dec.next_reply(), Err(DecodeError::BadStatus(9)));
    }

    #[test]
    fn partial_response_waits_for_more_bytes() {
        let mut wire = BytesMut::new();
        encode_response(&mut wire, Some(b"abcdef"));
        let mut dec = ResponseDecoder::new();
        dec.feed(&wire[..5]);
        assert_eq!(dec.next_response().unwrap(), None);
        dec.feed(&wire[5..]);
        assert_eq!(
            dec.next_response().unwrap(),
            Some(Response {
                value: Some(b"abcdef".to_vec())
            })
        );
    }
}
