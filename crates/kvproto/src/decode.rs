//! Incremental decoders for streamed frames.
//!
//! CPSERVER's client threads "gather as many requests as possible to perform
//! them in a single batch" (§4.1), which means they read whatever bytes TCP
//! delivers and must handle frames that arrive split across reads.  The
//! decoders here consume from a growable byte buffer and yield complete
//! frames as they become available.

use bytes::{Buf, BytesMut};

use crate::frame::{Request, RequestKind, Response, REQUEST_HEADER_BYTES, RESPONSE_HEADER_BYTES};
use crate::MAX_VALUE_BYTES;

/// Why decoding failed (the connection should be dropped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Value size field exceeds [`MAX_VALUE_BYTES`].
    ValueTooLarge(u64),
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::BadOpcode(b) => write!(f, "unknown opcode byte {b:#04x}"),
            DecodeError::ValueTooLarge(n) => {
                write!(f, "value of {n} bytes exceeds the protocol limit")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Streaming decoder for request frames (server side).
#[derive(Debug, Default)]
pub struct RequestDecoder {
    buffer: BytesMut,
}

impl RequestDecoder {
    /// New empty decoder.
    pub fn new() -> Self {
        RequestDecoder {
            buffer: BytesMut::with_capacity(4096),
        }
    }

    /// Feed freshly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Try to decode the next complete request.  `Ok(None)` means more bytes
    /// are needed.
    pub fn next_request(&mut self) -> Result<Option<Request>, DecodeError> {
        if self.buffer.len() < REQUEST_HEADER_BYTES {
            return Ok(None);
        }
        let opcode = self.buffer[0];
        let kind = RequestKind::from_byte(opcode).ok_or(DecodeError::BadOpcode(opcode))?;
        let key = u64::from_le_bytes(self.buffer[1..9].try_into().expect("header present"));
        let size =
            u32::from_le_bytes(self.buffer[9..13].try_into().expect("header present")) as usize;
        if size > MAX_VALUE_BYTES {
            return Err(DecodeError::ValueTooLarge(size as u64));
        }
        let body = if kind == RequestKind::Insert { size } else { 0 };
        if self.buffer.len() < REQUEST_HEADER_BYTES + body {
            return Ok(None);
        }
        self.buffer.advance(REQUEST_HEADER_BYTES);
        let value = self.buffer.split_to(body).to_vec();
        Ok(Some(Request { kind, key, value }))
    }

    /// Decode every complete request currently buffered.
    pub fn drain(&mut self, out: &mut Vec<Request>) -> Result<usize, DecodeError> {
        let before = out.len();
        while let Some(req) = self.next_request()? {
            out.push(req);
        }
        Ok(out.len() - before)
    }
}

/// Streaming decoder for response frames (client side).
#[derive(Debug, Default)]
pub struct ResponseDecoder {
    buffer: BytesMut,
}

impl ResponseDecoder {
    /// New empty decoder.
    pub fn new() -> Self {
        ResponseDecoder {
            buffer: BytesMut::with_capacity(4096),
        }
    }

    /// Feed freshly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    /// Try to decode the next complete response.  `Ok(None)` means more
    /// bytes are needed.
    pub fn next_response(&mut self) -> Result<Option<Response>, DecodeError> {
        if self.buffer.len() < RESPONSE_HEADER_BYTES {
            return Ok(None);
        }
        let size =
            u32::from_le_bytes(self.buffer[0..4].try_into().expect("header present")) as usize;
        if size > MAX_VALUE_BYTES {
            return Err(DecodeError::ValueTooLarge(size as u64));
        }
        if self.buffer.len() < RESPONSE_HEADER_BYTES + size {
            return Ok(None);
        }
        self.buffer.advance(RESPONSE_HEADER_BYTES);
        let value = self.buffer.split_to(size).to_vec();
        Ok(Some(Response {
            value: if size == 0 { None } else { Some(value) },
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_insert, encode_lookup, encode_response};
    use bytes::BytesMut;

    #[test]
    fn decodes_back_to_back_requests() {
        let mut wire = BytesMut::new();
        encode_lookup(&mut wire, 11);
        encode_insert(&mut wire, 22, b"hello");
        encode_lookup(&mut wire, 33);

        let mut dec = RequestDecoder::new();
        dec.feed(&wire);
        let mut out = Vec::new();
        assert_eq!(dec.drain(&mut out).unwrap(), 3);
        assert_eq!(out[0], Request::lookup(11));
        assert_eq!(out[1], Request::insert(22, b"hello".to_vec()));
        assert_eq!(out[2], Request::lookup(33));
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn handles_bytes_arriving_one_at_a_time() {
        let mut wire = BytesMut::new();
        encode_insert(&mut wire, 7, b"split-value");
        let mut dec = RequestDecoder::new();
        let mut decoded = Vec::new();
        for &b in wire.iter() {
            dec.feed(&[b]);
            dec.drain(&mut decoded).unwrap();
        }
        assert_eq!(decoded, vec![Request::insert(7, b"split-value".to_vec())]);
    }

    #[test]
    fn rejects_bad_opcode_and_oversized_values() {
        let mut dec = RequestDecoder::new();
        dec.feed(&[0xFFu8; REQUEST_HEADER_BYTES]);
        assert_eq!(dec.next_request(), Err(DecodeError::BadOpcode(0xFF)));

        let mut dec = RequestDecoder::new();
        let mut frame = vec![2u8];
        frame.extend_from_slice(&5u64.to_le_bytes());
        frame.extend_from_slice(&(u32::MAX).to_le_bytes());
        dec.feed(&frame);
        assert!(matches!(
            dec.next_request(),
            Err(DecodeError::ValueTooLarge(_))
        ));
        assert!(format!("{}", DecodeError::BadOpcode(3)).contains("opcode"));
    }

    #[test]
    fn response_round_trip_hit_and_miss() {
        let mut wire = BytesMut::new();
        encode_response(&mut wire, Some(b"v1"));
        encode_response(&mut wire, None);
        encode_response(&mut wire, Some(b""));
        let mut dec = ResponseDecoder::new();
        dec.feed(&wire);
        assert_eq!(
            dec.next_response().unwrap(),
            Some(Response {
                value: Some(b"v1".to_vec())
            })
        );
        assert_eq!(dec.next_response().unwrap(), Some(Response { value: None }));
        // A present-but-empty value is indistinguishable from a miss in this
        // protocol (size 0), exactly as in the paper's description.
        assert_eq!(dec.next_response().unwrap(), Some(Response { value: None }));
        assert_eq!(dec.next_response().unwrap(), None);
    }

    #[test]
    fn partial_response_waits_for_more_bytes() {
        let mut wire = BytesMut::new();
        encode_response(&mut wire, Some(b"abcdef"));
        let mut dec = ResponseDecoder::new();
        dec.feed(&wire[..5]);
        assert_eq!(dec.next_response().unwrap(), None);
        dec.feed(&wire[5..]);
        assert_eq!(
            dec.next_response().unwrap(),
            Some(Response {
                value: Some(b"abcdef".to_vec())
            })
        );
    }
}
