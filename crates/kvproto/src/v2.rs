//! kvproto v2: the versioned, typed operations protocol.
//!
//! v1 (see [`crate::frame`]) is an unversioned three-opcode frame: u64
//! LOOKUP / silent INSERT / RESIZE, with a bare size-prefixed response that
//! cannot distinguish "miss" from "empty value" from "error".  v2 makes the
//! protocol a typed operations surface:
//!
//! * a **connect-time handshake** (magic + version byte, acked by the
//!   server with the negotiated version) with transparent v1 fallback —
//!   v1 clients keep working against v2 servers because no v1 frame starts
//!   with the magic byte, and v2 clients fall back when a v1 server drops
//!   the unrecognized handshake;
//! * one unified request frame carrying `Lookup | Insert | Delete | Resize`
//!   over **both u64 hash keys and arbitrary byte-string keys** (the §8.2
//!   envelope, [`crate::envelope`], becomes the server's job);
//! * **every** request gets a response, carrying a typed status
//!   (`Ok | Miss | Retry | Err{code}`) instead of a bare hit/miss size.
//!
//! Wire layout (all integers little-endian):
//!
//! ```text
//! hello     := 0xCF 'C' 'P' version:u8                      (client → server, once)
//! hello_ack := 0xCF 'C' 'P' negotiated:u8                   (server → client, once)
//! request   := op:u8 flags:u8 key_len:u16 val_len:u32
//!              key_field:u64 key[key_len] value[val_len]
//! reply     := status:u8 code:u8 reserved:u16 val_len:u32 value[val_len]
//! ```
//!
//! `flags` bit 0 (`FLAG_BYTE_KEY`) selects byte-string keys: the key is the
//! `key_len` bytes following the header and `key_field` must be zero.
//! Without it, `key_field` is the 60-bit hash key and `key_len` must be
//! zero.  Replies are matched to requests by order — one reply per request,
//! FIFO per connection.

use bytes::{BufMut, BytesMut};

use crate::MAX_KEY;

/// First handshake byte.  Deliberately outside v1's opcode space (1..=3),
/// so a server can tell a v2 HELLO from a v1 request by its first byte, and
/// a v1-only server rejects a HELLO as a bad opcode (closing the
/// connection, which the v2 client treats as "fall back to v1").
pub const MAGIC: [u8; 3] = [0xCF, b'C', b'P'];

/// Version byte for the legacy unversioned protocol.
pub const VERSION_1: u8 = 1;

/// Version byte for the typed operations protocol described here.
pub const VERSION_2: u8 = 2;

/// Size of HELLO and HELLO-ACK on the wire.
pub const HELLO_BYTES: usize = 4;

/// Size of a v2 request header.
pub const OP_HEADER_BYTES: usize = 1 + 1 + 2 + 4 + 8;

/// Size of a v2 reply header.
pub const REPLY_HEADER_BYTES: usize = 1 + 1 + 2 + 4;

/// `flags` bit 0: the key is a byte string, not a u64 hash key.
pub const FLAG_BYTE_KEY: u8 = 1 << 0;

/// Largest byte-string key (the `key_len` field is a u16).
pub const MAX_KEY_STRING_BYTES: usize = u16::MAX as usize;

/// Typed v2 operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpKind {
    /// Fetch the value stored under a key.
    Lookup = 1,
    /// Store a value under a key.
    Insert = 2,
    /// Remove a key.
    Delete = 3,
    /// Admin: re-partition the live table (key packs partitions + pacing,
    /// see [`crate::pack_resize`]).
    Resize = 4,
    /// Admin: fetch the server's live metrics snapshot.  The reply value
    /// carries the snapshot serialized in the Prometheus text exposition
    /// format — the same bytes `cpserverd --stats-addr` serves over HTTP.
    /// v2-only: the v1 opcode space (1..=3) cannot express it.
    Stats = 5,
}

impl OpKind {
    /// Parse an opcode byte.
    pub fn from_byte(b: u8) -> Option<OpKind> {
        match b {
            1 => Some(OpKind::Lookup),
            2 => Some(OpKind::Insert),
            3 => Some(OpKind::Delete),
            4 => Some(OpKind::Resize),
            5 => Some(OpKind::Stats),
            _ => None,
        }
    }
}

/// A key on the wire: the table's native 60-bit hash key, or an arbitrary
/// byte string (stored via the [`crate::envelope`] encoding server-side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireKey {
    /// 60-bit hash key.
    Hash(u64),
    /// Arbitrary byte-string key.
    Bytes(Vec<u8>),
}

impl WireKey {
    /// The 60-bit hash key this key routes by: itself for hash keys, the
    /// envelope hash for byte keys.
    pub fn hash(&self) -> u64 {
        match self {
            WireKey::Hash(k) => *k & MAX_KEY,
            WireKey::Bytes(b) => crate::envelope::hash_key(b),
        }
    }
}

/// A decoded (or to-be-encoded) v2 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpFrame {
    /// What to do.
    pub kind: OpKind,
    /// Which key.
    pub key: WireKey,
    /// Value bytes (inserts only; empty otherwise).
    pub value: Vec<u8>,
}

impl OpFrame {
    /// Lookup of a hash key.
    pub fn lookup(key: u64) -> OpFrame {
        OpFrame {
            kind: OpKind::Lookup,
            key: WireKey::Hash(key & MAX_KEY),
            value: Vec::new(),
        }
    }

    /// Lookup of a byte-string key.
    pub fn lookup_bytes(key: impl Into<Vec<u8>>) -> OpFrame {
        OpFrame {
            kind: OpKind::Lookup,
            key: WireKey::Bytes(key.into()),
            value: Vec::new(),
        }
    }

    /// Insert under a hash key.
    pub fn insert(key: u64, value: impl Into<Vec<u8>>) -> OpFrame {
        OpFrame {
            kind: OpKind::Insert,
            key: WireKey::Hash(key & MAX_KEY),
            value: value.into(),
        }
    }

    /// Insert under a byte-string key.
    pub fn insert_bytes(key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> OpFrame {
        OpFrame {
            kind: OpKind::Insert,
            key: WireKey::Bytes(key.into()),
            value: value.into(),
        }
    }

    /// Delete a hash key.
    pub fn delete(key: u64) -> OpFrame {
        OpFrame {
            kind: OpKind::Delete,
            key: WireKey::Hash(key & MAX_KEY),
            value: Vec::new(),
        }
    }

    /// Delete a byte-string key.
    pub fn delete_bytes(key: impl Into<Vec<u8>>) -> OpFrame {
        OpFrame {
            kind: OpKind::Delete,
            key: WireKey::Bytes(key.into()),
            value: Vec::new(),
        }
    }

    /// Re-partition to `partitions` with the server's default pacing.
    pub fn resize(partitions: u64) -> OpFrame {
        OpFrame {
            kind: OpKind::Resize,
            key: WireKey::Hash(crate::pack_resize(partitions, 0)),
            value: Vec::new(),
        }
    }

    /// Re-partition with an explicit chunks-per-second pacing budget.
    pub fn resize_paced(partitions: u64, chunks_per_sec: u32) -> OpFrame {
        OpFrame {
            kind: OpKind::Resize,
            key: WireKey::Hash(crate::pack_resize(partitions, chunks_per_sec)),
            value: Vec::new(),
        }
    }

    /// Request the server's live metrics snapshot (Prometheus text in the
    /// reply value).
    pub fn stats() -> OpFrame {
        OpFrame {
            kind: OpKind::Stats,
            key: WireKey::Hash(0),
            value: Vec::new(),
        }
    }
}

/// Typed reply status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// The operation succeeded; lookups carry the value bytes.
    Ok = 0,
    /// The key was absent (lookup / delete), or a byte-key lookup hit a
    /// hash collision with a different key (§8.2: reads as a miss).
    Miss = 1,
    /// The server could not place the operation right now (e.g. it raced a
    /// live re-partition it cannot hide); the client should resubmit.
    Retry = 2,
    /// The operation failed; `code` says why and the value bytes may carry
    /// a human-readable message.
    Err = 3,
}

impl Status {
    /// Parse a status byte.
    pub fn from_byte(b: u8) -> Option<Status> {
        match b {
            0 => Some(Status::Ok),
            1 => Some(Status::Miss),
            2 => Some(Status::Retry),
            3 => Some(Status::Err),
            _ => None,
        }
    }
}

/// Why an operation failed (`Status::Err`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// No error (the code byte of non-`Err` replies).
    None,
    /// The table could not make room (value larger than a partition, or
    /// everything pinned).
    Capacity,
    /// The server does not support this operation (e.g. RESIZE on a static
    /// table or on the memcached baseline).
    Unsupported,
    /// The admin path rejected or could not complete the request.
    Admin,
    /// Internal server error.
    Internal,
    /// A code this client does not know (forward compatibility).
    Other(u8),
}

impl ErrCode {
    /// Wire byte for this code.
    pub fn to_byte(self) -> u8 {
        match self {
            ErrCode::None => 0,
            ErrCode::Capacity => 1,
            ErrCode::Unsupported => 2,
            ErrCode::Admin => 3,
            ErrCode::Internal => 4,
            ErrCode::Other(b) => b,
        }
    }

    /// Parse a wire byte (never fails: unknown codes are preserved).
    pub fn from_byte(b: u8) -> ErrCode {
        match b {
            0 => ErrCode::None,
            1 => ErrCode::Capacity,
            2 => ErrCode::Unsupported,
            3 => ErrCode::Admin,
            4 => ErrCode::Internal,
            other => ErrCode::Other(other),
        }
    }
}

impl core::fmt::Display for ErrCode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ErrCode::None => f.write_str("ok"),
            ErrCode::Capacity => f.write_str("out of capacity"),
            ErrCode::Unsupported => f.write_str("operation unsupported"),
            ErrCode::Admin => f.write_str("admin error"),
            ErrCode::Internal => f.write_str("internal error"),
            ErrCode::Other(b) => write!(f, "error code {b}"),
        }
    }
}

/// A decoded (or to-be-encoded) v2 reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// What happened.
    pub status: Status,
    /// Why it failed (`ErrCode::None` unless `status == Err`).
    pub code: ErrCode,
    /// Value bytes (lookup hits; error / admin status messages).
    pub value: Vec<u8>,
}

impl Reply {
    /// Success without a value (insert / delete-found).
    pub fn ok() -> Reply {
        Reply {
            status: Status::Ok,
            code: ErrCode::None,
            value: Vec::new(),
        }
    }

    /// Success with value bytes (lookup hit, admin status string).
    pub fn ok_value(value: impl Into<Vec<u8>>) -> Reply {
        Reply {
            status: Status::Ok,
            code: ErrCode::None,
            value: value.into(),
        }
    }

    /// Key absent (or byte-key collision).
    pub fn miss() -> Reply {
        Reply {
            status: Status::Miss,
            code: ErrCode::None,
            value: Vec::new(),
        }
    }

    /// Resubmit, please.
    pub fn retry() -> Reply {
        Reply {
            status: Status::Retry,
            code: ErrCode::None,
            value: Vec::new(),
        }
    }

    /// Failure with a typed code and an optional message.
    pub fn err(code: ErrCode, message: impl Into<Vec<u8>>) -> Reply {
        Reply {
            status: Status::Err,
            code,
            value: message.into(),
        }
    }
}

/// Append a HELLO (or HELLO-ACK — same layout) to `out`.
pub fn encode_hello(out: &mut BytesMut, version: u8) {
    out.reserve(HELLO_BYTES);
    out.put_slice(&MAGIC);
    out.put_u8(version);
}

/// Parse a HELLO / HELLO-ACK. Returns the version byte.
pub fn parse_hello(bytes: &[u8; HELLO_BYTES]) -> Result<u8, crate::DecodeError> {
    if bytes[..3] != MAGIC {
        return Err(crate::DecodeError::BadMagic(bytes[0]));
    }
    match bytes[3] {
        0 => Err(crate::DecodeError::BadVersion(0)),
        v => Ok(v),
    }
}

/// Append an encoded v2 request to `out`.
///
/// Panics if a byte-string key exceeds [`MAX_KEY_STRING_BYTES`] — that is a
/// caller bug, not a wire condition.
pub fn encode_op(out: &mut BytesMut, frame: &OpFrame) {
    let (flags, key_len, key_field, key_bytes): (u8, usize, u64, &[u8]) = match &frame.key {
        WireKey::Hash(k) => (0, 0, *k & MAX_KEY, &[]),
        WireKey::Bytes(b) => {
            assert!(
                b.len() <= MAX_KEY_STRING_BYTES,
                "byte-string keys are limited to {MAX_KEY_STRING_BYTES} bytes"
            );
            (FLAG_BYTE_KEY, b.len(), 0, b.as_slice())
        }
    };
    out.reserve(OP_HEADER_BYTES + key_len + frame.value.len());
    out.put_u8(frame.kind as u8);
    out.put_u8(flags);
    out.put_u16_le(key_len as u16);
    out.put_u32_le(frame.value.len() as u32);
    out.put_u64_le(key_field);
    out.put_slice(key_bytes);
    out.put_slice(&frame.value);
}

/// Append an encoded v2 reply to `out`.
pub fn encode_reply(out: &mut BytesMut, reply: &Reply) {
    encode_reply_parts(out, reply.status, reply.code, &reply.value);
}

/// Append an encoded v2 reply from its parts — the zero-intermediate-copy
/// path servers use for lookup hits (value bytes go straight from the
/// table's copy into the connection's output buffer).
pub fn encode_reply_parts(out: &mut BytesMut, status: Status, code: ErrCode, value: &[u8]) {
    out.reserve(REPLY_HEADER_BYTES + value.len());
    out.put_u8(status as u8);
    out.put_u8(code.to_byte());
    out.put_u16_le(0);
    out.put_u32_le(value.len() as u32);
    out.put_slice(value);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trips_and_rejects_garbage() {
        let mut buf = BytesMut::new();
        encode_hello(&mut buf, VERSION_2);
        assert_eq!(buf.len(), HELLO_BYTES);
        let bytes: [u8; HELLO_BYTES] = buf[..].try_into().unwrap();
        assert_eq!(parse_hello(&bytes).unwrap(), VERSION_2);
        assert!(parse_hello(&[1, b'C', b'P', 2]).is_err());
        assert!(parse_hello(&[0xCF, b'C', b'P', 0]).is_err());
    }

    #[test]
    fn magic_is_outside_v1_opcode_space() {
        assert!(crate::RequestKind::from_byte(MAGIC[0]).is_none());
    }

    #[test]
    fn op_encoding_layout_hash_key() {
        let mut buf = BytesMut::new();
        encode_op(&mut buf, &OpFrame::insert(7, b"abc".to_vec()));
        assert_eq!(buf.len(), OP_HEADER_BYTES + 3);
        assert_eq!(buf[0], OpKind::Insert as u8);
        assert_eq!(buf[1], 0);
        assert_eq!(u16::from_le_bytes(buf[2..4].try_into().unwrap()), 0);
        assert_eq!(u32::from_le_bytes(buf[4..8].try_into().unwrap()), 3);
        assert_eq!(u64::from_le_bytes(buf[8..16].try_into().unwrap()), 7);
        assert_eq!(&buf[16..], b"abc");
    }

    #[test]
    fn op_encoding_layout_byte_key() {
        let mut buf = BytesMut::new();
        encode_op(&mut buf, &OpFrame::lookup_bytes(b"user:1".to_vec()));
        assert_eq!(buf.len(), OP_HEADER_BYTES + 6);
        assert_eq!(buf[0], OpKind::Lookup as u8);
        assert_eq!(buf[1], FLAG_BYTE_KEY);
        assert_eq!(u16::from_le_bytes(buf[2..4].try_into().unwrap()), 6);
        assert_eq!(&buf[16..22], b"user:1");
    }

    #[test]
    fn reply_encoding_layout() {
        let mut buf = BytesMut::new();
        encode_reply(&mut buf, &Reply::err(ErrCode::Capacity, b"full".to_vec()));
        assert_eq!(buf[0], Status::Err as u8);
        assert_eq!(buf[1], ErrCode::Capacity.to_byte());
        assert_eq!(u32::from_le_bytes(buf[4..8].try_into().unwrap()), 4);
        assert_eq!(&buf[8..], b"full");
    }

    #[test]
    fn stats_opcode_round_trips_and_stays_out_of_v1() {
        assert_eq!(OpKind::from_byte(5), Some(OpKind::Stats));
        assert_eq!(OpKind::from_byte(6), None);
        // v1's opcode space must never grow to cover it: a v1 connection
        // has no way to ask for stats.
        assert!(crate::RequestKind::from_byte(OpKind::Stats as u8).is_none());
        let mut buf = BytesMut::new();
        encode_op(&mut buf, &OpFrame::stats());
        assert_eq!(buf.len(), OP_HEADER_BYTES);
        assert_eq!(buf[0], OpKind::Stats as u8);
    }

    #[test]
    fn err_codes_round_trip() {
        for code in [
            ErrCode::None,
            ErrCode::Capacity,
            ErrCode::Unsupported,
            ErrCode::Admin,
            ErrCode::Internal,
            ErrCode::Other(99),
        ] {
            assert_eq!(ErrCode::from_byte(code.to_byte()), code);
        }
        assert_eq!(Status::from_byte(9), None);
    }

    #[test]
    fn wire_key_hash_routes_byte_keys_through_the_envelope() {
        assert_eq!(WireKey::Hash(u64::MAX).hash(), MAX_KEY);
        assert_eq!(
            WireKey::Bytes(b"k".to_vec()).hash(),
            crate::envelope::hash_key(b"k")
        );
    }
}
