//! Message framing and encoding.

use bytes::{BufMut, BytesMut};

use crate::MAX_KEY;

/// Request opcodes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RequestKind {
    /// Fetch the value stored under a key.
    Lookup = 1,
    /// Store a value under a key (no response).
    Insert = 2,
    /// Admin: re-partition the live table. The key field packs the target
    /// partition count in its low 16 bits and an optional pacing budget
    /// (chunk hand-offs per second, 0 = use the server's configured
    /// default) in bits 16..48 — see [`pack_resize`]. The response value is
    /// a status string (`partitions=N ...` or `ERR ...`).
    Resize = 3,
}

/// Pack a RESIZE key field: target partition count plus an optional pacing
/// budget in chunk hand-offs per second (0 keeps the server's default).
pub fn pack_resize(partitions: u64, chunks_per_sec: u32) -> u64 {
    (partitions & 0xFFFF) | ((chunks_per_sec as u64) << 16)
}

/// The target partition count packed in a RESIZE key field.
pub fn resize_partitions(key: u64) -> usize {
    (key & 0xFFFF) as usize
}

/// The pacing budget packed in a RESIZE key field (`None` when the client
/// left it zero, i.e. "use the server's default pacing").
pub fn resize_chunks_per_sec(key: u64) -> Option<u32> {
    match ((key >> 16) & 0xFFFF_FFFF) as u32 {
        0 => None,
        rate => Some(rate),
    }
}

impl RequestKind {
    /// Parse an opcode byte.
    pub fn from_byte(b: u8) -> Option<RequestKind> {
        match b {
            1 => Some(RequestKind::Lookup),
            2 => Some(RequestKind::Insert),
            3 => Some(RequestKind::Resize),
            _ => None,
        }
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// What to do.
    pub kind: RequestKind,
    /// The 60-bit hash key.
    pub key: u64,
    /// Value bytes (empty for lookups).
    pub value: Vec<u8>,
}

impl Request {
    /// Build a lookup request.
    pub fn lookup(key: u64) -> Request {
        Request {
            kind: RequestKind::Lookup,
            key: key & MAX_KEY,
            value: Vec::new(),
        }
    }

    /// Build an insert request.
    pub fn insert(key: u64, value: impl Into<Vec<u8>>) -> Request {
        Request {
            kind: RequestKind::Insert,
            key: key & MAX_KEY,
            value: value.into(),
        }
    }

    /// Build a resize admin request (server-default pacing).
    pub fn resize(partitions: u64) -> Request {
        Request {
            kind: RequestKind::Resize,
            key: pack_resize(partitions, 0),
            value: Vec::new(),
        }
    }

    /// Build a resize admin request with an explicit pacing budget in chunk
    /// hand-offs per second.
    pub fn resize_paced(partitions: u64, chunks_per_sec: u32) -> Request {
        Request {
            kind: RequestKind::Resize,
            key: pack_resize(partitions, chunks_per_sec),
            value: Vec::new(),
        }
    }
}

/// A decoded response frame (only lookups get responses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The value, or `None` when the key was absent (size field of zero).
    pub value: Option<Vec<u8>>,
}

/// Size of a request header on the wire: opcode + key + size.
pub const REQUEST_HEADER_BYTES: usize = 1 + 8 + 4;

/// Size of a response header on the wire: size.
pub const RESPONSE_HEADER_BYTES: usize = 4;

/// Append an encoded LOOKUP request to `out`.
pub fn encode_lookup(out: &mut BytesMut, key: u64) {
    out.reserve(REQUEST_HEADER_BYTES);
    out.put_u8(RequestKind::Lookup as u8);
    out.put_u64_le(key & MAX_KEY);
    out.put_u32_le(0);
}

/// Append an encoded INSERT request to `out`.
pub fn encode_insert(out: &mut BytesMut, key: u64, value: &[u8]) {
    out.reserve(REQUEST_HEADER_BYTES + value.len());
    out.put_u8(RequestKind::Insert as u8);
    out.put_u64_le(key & MAX_KEY);
    out.put_u32_le(value.len() as u32);
    out.put_slice(value);
}

/// Append an encoded RESIZE admin request to `out`: re-partition the live
/// table to `partitions` server threads using the server's default pacing.
/// The server answers with a status string framed like a lookup response.
pub fn encode_resize(out: &mut BytesMut, partitions: u64) {
    encode_resize_paced(out, partitions, 0);
}

/// Append an encoded RESIZE admin request with an explicit migration pacing
/// budget (`chunks_per_sec` chunk hand-offs per second; 0 = server
/// default).
pub fn encode_resize_paced(out: &mut BytesMut, partitions: u64, chunks_per_sec: u32) {
    encode_resize_packed(out, pack_resize(partitions, chunks_per_sec));
}

/// Append an encoded RESIZE admin request whose key field is already
/// packed (see [`pack_resize`]).
pub fn encode_resize_packed(out: &mut BytesMut, packed_key: u64) {
    out.reserve(REQUEST_HEADER_BYTES);
    out.put_u8(RequestKind::Resize as u8);
    out.put_u64_le(packed_key);
    out.put_u32_le(0);
}

/// Append an encoded request (any kind) to `out`.
pub fn encode_request(out: &mut BytesMut, request: &Request) {
    match request.kind {
        RequestKind::Lookup => encode_lookup(out, request.key),
        RequestKind::Insert => encode_insert(out, request.key, &request.value),
        RequestKind::Resize => encode_resize(out, request.key),
    }
}

/// Append an encoded LOOKUP response to `out`. `None` encodes a miss
/// (size 0), per §4.1.
pub fn encode_response(out: &mut BytesMut, value: Option<&[u8]>) {
    match value {
        Some(v) => {
            out.reserve(RESPONSE_HEADER_BYTES + v.len());
            out.put_u32_le(v.len() as u32);
            out.put_slice(v);
        }
        None => {
            out.reserve(RESPONSE_HEADER_BYTES);
            out.put_u32_le(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_encoding_layout() {
        let mut buf = BytesMut::new();
        encode_lookup(&mut buf, 0x1234);
        assert_eq!(buf.len(), REQUEST_HEADER_BYTES);
        assert_eq!(buf[0], 1);
        assert_eq!(u64::from_le_bytes(buf[1..9].try_into().unwrap()), 0x1234);
        assert_eq!(u32::from_le_bytes(buf[9..13].try_into().unwrap()), 0);
    }

    #[test]
    fn insert_encoding_layout() {
        let mut buf = BytesMut::new();
        encode_insert(&mut buf, 7, b"abc");
        assert_eq!(buf.len(), REQUEST_HEADER_BYTES + 3);
        assert_eq!(buf[0], 2);
        assert_eq!(u32::from_le_bytes(buf[9..13].try_into().unwrap()), 3);
        assert_eq!(&buf[13..], b"abc");
    }

    #[test]
    fn keys_are_masked_to_60_bits() {
        let mut buf = BytesMut::new();
        encode_lookup(&mut buf, u64::MAX);
        let key = u64::from_le_bytes(buf[1..9].try_into().unwrap());
        assert_eq!(key, MAX_KEY);
        assert_eq!(Request::lookup(u64::MAX).key, MAX_KEY);
    }

    #[test]
    fn response_encoding_hit_and_miss() {
        let mut buf = BytesMut::new();
        encode_response(&mut buf, Some(b"value"));
        assert_eq!(u32::from_le_bytes(buf[0..4].try_into().unwrap()), 5);
        assert_eq!(&buf[4..9], b"value");
        buf.clear();
        encode_response(&mut buf, None);
        assert_eq!(buf.len(), 4);
        assert_eq!(u32::from_le_bytes(buf[0..4].try_into().unwrap()), 0);
    }

    #[test]
    fn request_constructors() {
        let l = Request::lookup(5);
        assert_eq!(l.kind, RequestKind::Lookup);
        assert!(l.value.is_empty());
        let i = Request::insert(5, b"x".to_vec());
        assert_eq!(i.kind, RequestKind::Insert);
        assert_eq!(i.value, b"x");
        let r = Request::resize(4);
        assert_eq!(r.kind, RequestKind::Resize);
        assert_eq!(r.key, 4);
        assert_eq!(RequestKind::from_byte(1), Some(RequestKind::Lookup));
        assert_eq!(RequestKind::from_byte(2), Some(RequestKind::Insert));
        assert_eq!(RequestKind::from_byte(3), Some(RequestKind::Resize));
        assert_eq!(RequestKind::from_byte(9), None);
    }

    #[test]
    fn resize_encoding_layout_and_round_trip() {
        let mut buf = BytesMut::new();
        encode_resize(&mut buf, 8);
        assert_eq!(buf.len(), REQUEST_HEADER_BYTES);
        assert_eq!(buf[0], 3);
        assert_eq!(u64::from_le_bytes(buf[1..9].try_into().unwrap()), 8);
        let mut decoder = crate::RequestDecoder::new();
        decoder.feed(&buf);
        assert_eq!(decoder.next_request().unwrap(), Some(Request::resize(8)));
    }

    #[test]
    fn resize_key_packs_partitions_and_pacing() {
        // Plain resize: partition count only, "default pacing" marker.
        let plain = Request::resize(8);
        assert_eq!(resize_partitions(plain.key), 8);
        assert_eq!(resize_chunks_per_sec(plain.key), None);

        // Paced resize round-trips both fields through the wire.
        let mut buf = BytesMut::new();
        encode_resize_paced(&mut buf, 4, 250);
        let mut decoder = crate::RequestDecoder::new();
        decoder.feed(&buf);
        let decoded = decoder.next_request().unwrap().expect("one frame");
        assert_eq!(decoded, Request::resize_paced(4, 250));
        assert_eq!(resize_partitions(decoded.key), 4);
        assert_eq!(resize_chunks_per_sec(decoded.key), Some(250));

        // The packing keeps the two fields independent.
        assert_eq!(resize_partitions(pack_resize(0xFFFF, u32::MAX)), 0xFFFF);
        assert_eq!(
            resize_chunks_per_sec(pack_resize(3, u32::MAX)),
            Some(u32::MAX)
        );
    }
}
