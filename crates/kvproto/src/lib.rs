//! The CPSERVER / LOCKSERVER binary wire protocol.
//!
//! §4.1 of the paper: "CPSERVER uses a simple binary protocol with two
//! message types":
//!
//! * **LOOKUP** — the client sends a hash key; the server replies with the
//!   size of the value followed by that many bytes, or a size of zero if
//!   the key is absent.
//! * **INSERT** — the client sends a hash key, a size, and `size` bytes of
//!   value; "the server silently performs INSERT requests and returns no
//!   response".
//!
//! The concrete framing (the paper does not spell out byte offsets) is:
//!
//! ```text
//! request  := opcode:u8  key:u64le  size:u32le  value[size]      (size = 0 for LOOKUP)
//! response := size:u32le value[size]                             (LOOKUP only)
//! ```
//!
//! Keys are 60-bit integers like everywhere else in the system.  The crate
//! provides zero-copy-ish encoding into reusable buffers plus an
//! incremental [`RequestDecoder`]/[`ResponseDecoder`] pair that handle
//! partial reads from a TCP stream.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod decode;
pub mod frame;

pub use decode::{DecodeError, RequestDecoder, ResponseDecoder};
pub use frame::{
    encode_insert, encode_lookup, encode_request, encode_resize, encode_resize_paced,
    encode_response, pack_resize, resize_chunks_per_sec, resize_partitions, Request, RequestKind,
    Response,
};

/// Largest value size the servers accept, to bound memory per request
/// (16 MiB; memcached's default limit is 1 MiB).
pub const MAX_VALUE_BYTES: usize = 16 * 1024 * 1024;

/// Largest legal key (60 bits), mirroring the table's key width.
pub const MAX_KEY: u64 = (1 << 60) - 1;
