//! The CPSERVER / LOCKSERVER wire protocol, in two generations.
//!
//! **v1** is the paper's protocol (§4.1): "CPSERVER uses a simple binary
//! protocol with two message types" — u64-keyed LOOKUP (answered with a
//! size-prefixed value, size 0 on a miss) and silent INSERT — plus this
//! reproduction's RESIZE admin opcode.  It is unversioned:
//!
//! ```text
//! request  := opcode:u8  key:u64le  size:u32le  value[size]      (size = 0 for LOOKUP)
//! response := size:u32le value[size]                             (LOOKUP only)
//! ```
//!
//! **v2** ([`v2`]) is the typed operations protocol: a connect-time
//! handshake (magic + version byte, acked with the negotiated version),
//! one unified `Lookup | Insert | Delete | Resize` request frame over both
//! u64 and byte-string keys (the §8.2 envelope, [`envelope`], lives here so
//! servers verify key-collision mismatches), and a typed
//! `Ok | Miss | Retry | Err{code}` reply for *every* request.
//!
//! Servers speak both: [`ServerDecoder`] tells them apart by the first
//! byte a connection sends, so v1 clients keep working unchanged, and v2
//! clients fall back to v1 when a v1-only server drops their handshake.
//! The README's "Wire protocol" section is the normative spec.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod decode;
pub mod envelope;
pub mod frame;
pub mod v2;

pub use decode::{
    DecodeError, ReplyDecoder, RequestDecoder, ResponseDecoder, ServerDecoder, ServerEvent,
    ServerOp,
};
pub use frame::{
    encode_insert, encode_lookup, encode_request, encode_resize, encode_resize_paced,
    encode_response, pack_resize, resize_chunks_per_sec, resize_partitions, Request, RequestKind,
    Response,
};
pub use v2::{
    encode_hello, encode_op, encode_reply, encode_reply_parts, parse_hello, ErrCode, OpFrame,
    OpKind, Reply, Status, WireKey, HELLO_BYTES, MAX_KEY_STRING_BYTES, VERSION_1, VERSION_2,
};

/// Largest value size the servers accept, to bound memory per request
/// (16 MiB; memcached's default limit is 1 MiB).
pub const MAX_VALUE_BYTES: usize = 16 * 1024 * 1024;

/// Largest legal key (60 bits), mirroring the table's key width.
pub const MAX_KEY: u64 = (1 << 60) - 1;
