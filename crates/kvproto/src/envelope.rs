//! The §8.2 arbitrary-length-key envelope, as a protocol-layer concern.
//!
//! The paper's extension plan for byte-string keys: hash the key down to
//! the table's 60-bit key space, store `key ++ value` together as the
//! value, and on LOOKUP compare the stored key against the requested one —
//! a mismatch is a hash collision and reads as a miss (acceptable for a
//! cache).  Historically this lived in a client-side adapter
//! (`cphash::AnyKeyClient`); kvproto v2 moves it here so *servers* can
//! store byte-keyed entries and verify key-collision mismatches
//! themselves, making byte-string keys a first-class wire citizen.
//!
//! Envelope layout: `[key_len: u32 LE][key bytes][value bytes]`.

use cphash_hashcore::{hash64, MAX_KEY};

/// The 60-bit hash key used for a byte-string key.
///
/// Hashes the bytes 8 at a time through the same mixer the table uses, so
/// every backend (in-process, CPSERVER, memcache baseline) places a given
/// byte key identically.
pub fn hash_key(key: &[u8]) -> u64 {
    let mut acc: u64 = 0x9E37_79B9_97F4_A7C1 ^ (key.len() as u64);
    for chunk in key.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        acc = hash64(acc ^ u64::from_le_bytes(word));
    }
    acc & MAX_KEY
}

/// Encode `key ++ value` into a fresh envelope.
pub fn encode_envelope(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + key.len() + value.len());
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    out
}

/// Split an envelope back into `(key, value)`.  `None` on a malformed
/// envelope (truncated header or key).
pub fn decode_envelope(envelope: &[u8]) -> Option<(&[u8], &[u8])> {
    if envelope.len() < 4 {
        return None;
    }
    let key_len = u32::from_le_bytes(envelope[..4].try_into().ok()?) as usize;
    if envelope.len() < 4 + key_len {
        return None;
    }
    Some((&envelope[4..4 + key_len], &envelope[4 + key_len..]))
}

/// Decode an envelope and return the value iff the stored key matches the
/// requested one (`None` on malformed envelopes *and* on collisions — both
/// read as a miss, per §8.2's cache argument).
pub fn unwrap_matching<'a>(envelope: &'a [u8], wanted_key: &[u8]) -> Option<&'a [u8]> {
    decode_envelope(envelope).and_then(|(stored, value)| (stored == wanted_key).then_some(value))
}

/// The form a server stores for a keyed insert: the 60-bit hash key plus
/// the value bytes — borrowed as-is for hash keys, the §8.2 envelope for
/// byte keys.  Shared by every server so the storage encoding cannot
/// drift between backends.
pub fn stored_form<'a>(key: &crate::WireKey, value: &'a [u8]) -> (u64, std::borrow::Cow<'a, [u8]>) {
    match key {
        crate::WireKey::Hash(k) => (*k & MAX_KEY, std::borrow::Cow::Borrowed(value)),
        crate::WireKey::Bytes(b) => (
            hash_key(b),
            std::borrow::Cow::Owned(encode_envelope(b, value)),
        ),
    }
}

/// Verify a stored value against the key that looked it up: hash keys pass
/// the bytes through; byte keys unwrap the envelope and read collisions
/// (or malformed envelopes) as a miss.  Shared by every server so §8.2
/// verification cannot drift between backends.
pub fn verify_stored<'a>(key: &crate::WireKey, stored: &'a [u8]) -> Option<&'a [u8]> {
    match key {
        crate::WireKey::Hash(_) => Some(stored),
        crate::WireKey::Bytes(wanted) => unwrap_matching(stored, wanted),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips() {
        let e = encode_envelope(b"key", b"value bytes");
        assert_eq!(
            decode_envelope(&e),
            Some((&b"key"[..], &b"value bytes"[..]))
        );
        assert_eq!(decode_envelope(&[1, 2]), None);
        assert_eq!(decode_envelope(&[200, 0, 0, 0, 1]), None);
    }

    #[test]
    fn unwrap_matching_detects_collisions() {
        let e = encode_envelope(b"alpha", b"v");
        assert_eq!(unwrap_matching(&e, b"alpha"), Some(&b"v"[..]));
        assert_eq!(
            unwrap_matching(&e, b"beta"),
            None,
            "collision reads as a miss"
        );
        assert_eq!(unwrap_matching(&[1, 2], b"alpha"), None);
    }

    #[test]
    fn hash_keys_are_60_bit_and_deterministic() {
        let a = hash_key(b"hello");
        assert_eq!(a, hash_key(b"hello"));
        assert_ne!(a, hash_key(b"hellp"));
        assert!(a <= MAX_KEY);
        assert_ne!(hash_key(b""), hash_key(&[0u8; 8]), "length is mixed in");
    }
}
