//! Model-based tests of the partition's LRU behaviour: the partition must
//! evict exactly the keys a reference LRU cache model would evict, for
//! arbitrary operation sequences, because the paper's Figure 5/8 comparison
//! hinges on the LRU list being maintained correctly and cheaply.

use std::collections::VecDeque;

use proptest::prelude::*;

use cphash_hashcore::{EvictionPolicy, Partition, PartitionConfig};

/// A straightforward reference LRU cache holding `capacity` fixed-size
/// entries (8-byte values, so capacity_bytes / 8 entries).
struct ModelLru {
    capacity: usize,
    /// Keys from least- to most-recently used.
    order: VecDeque<u64>,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        ModelLru {
            capacity,
            order: VecDeque::new(),
        }
    }

    fn touch(&mut self, key: u64) {
        if let Some(pos) = self.order.iter().position(|k| *k == key) {
            self.order.remove(pos);
            self.order.push_back(key);
        }
    }

    fn insert(&mut self, key: u64) {
        if let Some(pos) = self.order.iter().position(|k| *k == key) {
            self.order.remove(pos);
        } else if self.order.len() == self.capacity {
            self.order.pop_front();
        }
        self.order.push_back(key);
    }

    fn contains(&self, key: u64) -> bool {
        self.order.contains(&key)
    }
}

#[derive(Debug, Clone, Copy)]
enum LruOp {
    Insert(u64),
    Lookup(u64),
}

fn lru_op(keys: u64) -> impl Strategy<Value = LruOp> {
    prop_oneof![
        (0..keys).prop_map(LruOp::Insert),
        (0..keys).prop_map(LruOp::Lookup),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With a single bucket... no — with the full bucket array, the
    /// partition's *global* LRU order must match the model exactly: the
    /// same keys survive, in the same recency order.
    #[test]
    fn partition_lru_matches_reference_model(
        ops in prop::collection::vec(lru_op(32), 1..400),
        capacity_entries in 2usize..12,
    ) {
        let mut partition = Partition::new(PartitionConfig::new(
            64,
            Some(capacity_entries * 8),
        ));
        let mut model = ModelLru::new(capacity_entries);
        let mut buf = Vec::new();
        for op in ops {
            match op {
                LruOp::Insert(key) => {
                    partition.insert_copy(key, &key.to_le_bytes()).unwrap();
                    model.insert(key);
                }
                LruOp::Lookup(key) => {
                    let hit = partition.lookup_copy(key, &mut buf);
                    prop_assert_eq!(hit, model.contains(key), "hit/miss mismatch for key {}", key);
                    if hit {
                        prop_assert_eq!(&buf, &key.to_le_bytes());
                        model.touch(key);
                    }
                }
            }
            partition.check_invariants();
        }
        // Same survivors…
        let mut surviving: Vec<u64> = partition.keys();
        surviving.sort_unstable();
        let mut expected: Vec<u64> = model.order.iter().copied().collect();
        expected.sort_unstable();
        prop_assert_eq!(surviving, expected);
        // …and the same least-to-most-recent order.
        let lru_order = partition.lru_order();
        let model_order: Vec<u64> = model.order.iter().copied().collect();
        prop_assert_eq!(lru_order, model_order);
    }

    /// Under random eviction the exact victims differ, but the capacity
    /// bound and the "most recent insert always survives" property must
    /// still hold.
    #[test]
    fn random_eviction_respects_capacity_and_keeps_latest(
        keys in prop::collection::vec(0u64..1000, 1..300),
        capacity_entries in 2usize..16,
    ) {
        let mut partition = Partition::new(
            PartitionConfig::new(32, Some(capacity_entries * 8))
                .with_eviction(EvictionPolicy::Random),
        );
        for &key in &keys {
            partition.insert_copy(key, &key.to_le_bytes()).unwrap();
            prop_assert!(partition.bytes_in_use() <= capacity_entries * 8);
            prop_assert!(partition.contains(key), "the key just inserted must be present");
            partition.check_invariants();
        }
        prop_assert!(partition.len() <= capacity_entries);
    }
}

/// A long alternating scan/drain workload (the classic LRU pathological
/// pattern) must keep memory exactly at the budget and never corrupt the
/// list.
#[test]
fn scan_heavy_workload_stays_at_budget() {
    let capacity = 256 * 8;
    let mut partition = Partition::new(PartitionConfig::new(512, Some(capacity)));
    for round in 0..50u64 {
        for key in 0..1000u64 {
            partition
                .insert_copy(key + round, &(key + round).to_le_bytes())
                .unwrap();
        }
        assert!(partition.bytes_in_use() <= capacity);
        assert_eq!(partition.len(), 256);
        partition.check_invariants();
    }
    let stats = partition.stats();
    assert!(stats.evictions >= 50 * 1000 - 256);
}
