//! Property test for the per-chunk export index: for arbitrary
//! insert/remove/export interleavings, exporting one chunk through the
//! intrusive membership index must produce exactly what the legacy
//! full-table scan restricted to that chunk produces.
//!
//! Two partitions are fed the same operation stream in lockstep; one
//! exports with [`Partition::export_chunk`] (index walk), the other with
//! [`Partition::export_matching`] (slot scan filtered by the chunk).  Any
//! divergence — in extracted sets, deferral decisions, or the surviving
//! table contents — fails the property.

use proptest::prelude::*;

use cphash_hashcore::{migration_chunk, ExportOutcome, Partition, PartitionConfig};

const CHUNKS: usize = 8;

/// One scripted operation, decoded from a generated `(selector, key)` pair.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64),
    Delete(u64),
    /// Export one chunk, keeping only even keys (a nontrivial `leaving`
    /// predicate on top of the chunk restriction).
    ExportEven(usize),
    /// Export one chunk entirely.
    ExportAll(usize),
}

fn decode(selector: u8, key: u64) -> Op {
    match selector % 8 {
        // Weight the stream towards inserts so the table has content.
        0..=3 => Op::Insert(key),
        4..=5 => Op::Delete(key),
        6 => Op::ExportEven((key % CHUNKS as u64) as usize),
        _ => Op::ExportAll((key % CHUNKS as u64) as usize),
    }
}

fn sorted(mut entries: Vec<(u64, Vec<u8>)>) -> Vec<(u64, Vec<u8>)> {
    entries.sort_unstable_by_key(|(k, _)| *k);
    entries
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    #[test]
    fn chunk_export_equals_filtered_scan_export(
        script in prop::collection::vec((any::<u8>(), 0u64..512), 0..120),
    ) {
        let indexed_cfg = PartitionConfig::new(64, None).with_migration_chunks(CHUNKS);
        let mut indexed = Partition::new(indexed_cfg);
        let mut scanned = Partition::new(indexed_cfg);

        for (selector, key) in script {
            match decode(selector, key) {
                Op::Insert(key) => {
                    indexed.insert_copy(key, &key.to_le_bytes()).unwrap();
                    scanned.insert_copy(key, &key.to_le_bytes()).unwrap();
                }
                Op::Delete(key) => {
                    prop_assert_eq!(indexed.delete(key), scanned.delete(key));
                }
                Op::ExportEven(chunk) => {
                    let via_index = indexed.export_chunk(chunk, |k| k % 2 == 0);
                    let via_scan = scanned.export_matching(|k| {
                        migration_chunk(k, CHUNKS) == chunk && k % 2 == 0
                    });
                    compare(via_index, via_scan);
                }
                Op::ExportAll(chunk) => {
                    let via_index = indexed.export_chunk(chunk, |_| true);
                    let via_scan =
                        scanned.export_matching(|k| migration_chunk(k, CHUNKS) == chunk);
                    compare(via_index, via_scan);
                }
            }
            indexed.check_invariants();
            scanned.check_invariants();
        }

        // The surviving contents agree key for key.
        let mut left = indexed.keys();
        let mut right = scanned.keys();
        left.sort_unstable();
        right.sort_unstable();
        prop_assert_eq!(left, right);
        // And the indexed side never fell back to scanning.
        prop_assert_eq!(indexed.stats().full_export_scans, 0);
    }
}

/// Both export paths must agree on the outcome, entry for entry.
fn compare(via_index: ExportOutcome, via_scan: ExportOutcome) {
    match (via_index, via_scan) {
        (ExportOutcome::Extracted(a), ExportOutcome::Extracted(b)) => {
            assert_eq!(sorted(a), sorted(b), "export sets diverged");
        }
        (a, b) => assert_eq!(a, b, "outcomes diverged"),
    }
}
