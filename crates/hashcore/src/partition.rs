//! The partition: a single-threaded hash table with LRU eviction,
//! reference counting and deferred frees.

use cphash_alloc::{SlabAllocator, SlabConfig, ValueHandle};

use crate::element::{Element, ElementId, ElementState, Slot, NIL};
use crate::hash::{
    bucket_for_key, bucket_from_hash, hash64, key_tag, key_tag_from_hash, migration_chunk,
    MAX_MIGRATION_CHUNKS,
};
use crate::policy::EvictionPolicy;
use crate::stats::PartitionStats;

/// How a partition stores its buckets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BucketLayout {
    /// Bare `u32` chain heads (4 bytes per bucket): every probe is a
    /// dependent pointer chase from the head array into the element slab.
    /// This is the pre-inline layout, kept selectable for A/B runs.
    Chain,
    /// 64-byte-aligned tagged bucket lines: each bucket packs
    /// [`INLINE_SLOTS`] 8-bit key tags plus as many `u32` element refs
    /// (and the overflow chain head) into the bucket's own cache line, so
    /// one prefetch of that line resolves the common case entirely.
    #[default]
    Inline,
}

impl BucketLayout {
    /// Environment variable that selects the default layout
    /// (`chain` or `inline`).
    pub const ENV_VAR: &'static str = "CPHASH_BUCKET_LAYOUT";

    /// Parse a layout name as used by `CPHASH_BUCKET_LAYOUT`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "chain" | "chained" => Ok(BucketLayout::Chain),
            "inline" | "tagged" => Ok(BucketLayout::Inline),
            other => Err(format!(
                "unknown bucket layout {other:?} (expected \"chain\" or \"inline\")"
            )),
        }
    }

    /// Canonical name, round-trippable through [`BucketLayout::parse`].
    pub fn as_str(&self) -> &'static str {
        match self {
            BucketLayout::Chain => "chain",
            BucketLayout::Inline => "inline",
        }
    }

    /// The layout selected by `CPHASH_BUCKET_LAYOUT`, or the default when
    /// the variable is unset or unparseable (a typo must not silently
    /// change table behavior mid-fleet; it falls back to the default).
    pub fn from_env() -> Self {
        match std::env::var(Self::ENV_VAR) {
            Ok(value) => Self::parse(&value).unwrap_or_default(),
            Err(_) => Self::default(),
        }
    }
}

impl core::fmt::Display for BucketLayout {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Configuration of one partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionConfig {
    /// Number of buckets (rounded up to a power of two). The paper sizes the
    /// table for "an average of one element per bucket".
    pub buckets: usize,
    /// Byte budget for the values stored in this partition; `None` disables
    /// eviction-by-capacity (the table only grows).
    pub capacity_bytes: Option<usize>,
    /// Eviction policy (LRU by default, random for the §6.3 variant).
    pub eviction: EvictionPolicy,
    /// Seed for the random-eviction PRNG (ignored under LRU).
    pub seed: u64,
    /// Number of migration chunks the key space is cut into (a power of
    /// two).  The partition keeps an intrusive per-chunk membership index so
    /// that exporting one chunk for live re-partitioning walks only that
    /// chunk's elements instead of scanning the whole table.  Must match the
    /// table's `migration_chunks`.
    pub migration_chunks: usize,
    /// Bucket storage layout (tagged inline lines by default; the chained
    /// layout remains selectable for A/B comparisons).
    pub layout: BucketLayout,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            buckets: 1024,
            capacity_bytes: None,
            eviction: EvictionPolicy::Lru,
            seed: 0x1234_5678,
            migration_chunks: 64,
            layout: BucketLayout::default(),
        }
    }
}

impl PartitionConfig {
    /// A config with the given bucket count and byte budget.
    pub fn new(buckets: usize, capacity_bytes: Option<usize>) -> Self {
        PartitionConfig {
            buckets,
            capacity_bytes,
            ..Default::default()
        }
    }

    /// Same config with a different eviction policy.
    pub fn with_eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = eviction;
        self
    }

    /// Same config with a different migration-chunk count.
    pub fn with_migration_chunks(mut self, migration_chunks: usize) -> Self {
        self.migration_chunks = migration_chunks;
        self
    }

    /// Same config with a different bucket layout.
    pub fn with_layout(mut self, layout: BucketLayout) -> Self {
        self.layout = layout;
        self
    }
}

/// The first phase of a two-phase operation: the key plus its
/// already-computed bucket index.
///
/// [`Partition::prepare`] does the pure arithmetic (hashing) without
/// touching table memory; the caller may then issue a cache prefetch for
/// the bucket's chain head ([`Partition::prefetch_prepared`]) and finally
/// execute the operation with [`Partition::lookup_prepared`],
/// [`Partition::insert_prepared`] or [`Partition::delete_prepared`].  The
/// CPHash server loop stages whole batches this way so the DRAM misses of a
/// batch overlap instead of serializing.
///
/// A `BucketRef` is only meaningful on the partition that produced it;
/// results on any other partition are unspecified (but memory-safe).
#[derive(Debug, Clone, Copy)]
pub struct BucketRef {
    key: u64,
    bucket: usize,
    tag: u8,
}

impl BucketRef {
    /// The key this reference was prepared for.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The bucket index the key hashes to.
    pub fn bucket(&self) -> usize {
        self.bucket
    }

    /// The key's 8-bit tag, as stored in the bucket's inline cache line.
    pub fn tag(&self) -> u8 {
        self.tag
    }
}

/// Inline tagged entries per bucket cache line (7 on 64-byte lines: the
/// tags share the header word with the occupancy bitmap, and the refs plus
/// the overflow head fill 32 of the remaining 56 bytes).
pub const INLINE_SLOTS: usize =
    cphash_cacheline::packing::bucket_inline_slots(cphash_cacheline::CACHE_LINE_SIZE);

/// Occupancy bitmap with every inline slot taken.
const LINE_FULL: u8 = (1 << INLINE_SLOTS) - 1;

/// One bucket under the inline layout: a 64-byte-aligned line holding the
/// bucket's first [`INLINE_SLOTS`] entries as (tag, element ref) pairs plus
/// the head of the overflow chain for entries past that.
///
/// Layout invariant: an inline slot is never free while the overflow chain
/// is non-empty — [`Partition::unlink`] promotes the chain head into a
/// freed slot — so a probe that misses every tag *and* sees a NIL overflow
/// head has proven the key absent without touching the element slab.
#[repr(C, align(64))]
#[derive(Clone, Copy)]
struct BucketLine {
    /// 8-bit key tags of the occupied inline slots.
    tags: [u8; INLINE_SLOTS],
    /// Occupancy bitmap over the inline slots (bit `s` ⇒ slot `s` taken).
    used: u8,
    /// Element refs (slab indices) of the occupied inline slots.
    refs: [u32; INLINE_SLOTS],
    /// Head of the intrusive overflow chain (`NIL` when within capacity).
    overflow: u32,
}

// One bucket is exactly one naturally-aligned cache line, so a single
// prefetch covers all of it and two buckets never share a line.
const _: () = assert!(core::mem::size_of::<BucketLine>() == cphash_cacheline::CACHE_LINE_SIZE);
const _: () = assert!(core::mem::align_of::<BucketLine>() == cphash_cacheline::CACHE_LINE_SIZE);

impl BucketLine {
    const EMPTY: BucketLine = BucketLine {
        tags: [0; INLINE_SLOTS],
        used: 0,
        refs: [NIL; INLINE_SLOTS],
        overflow: NIL,
    };

    /// Lowest free inline slot, if any.
    fn free_slot(&self) -> Option<usize> {
        let free = !self.used & LINE_FULL;
        if free == 0 {
            None
        } else {
            Some(free.trailing_zeros() as usize)
        }
    }

    /// The inline slot holding element `idx`, if it lives inline.
    fn slot_of_ref(&self, idx: u32) -> Option<usize> {
        (0..INLINE_SLOTS).find(|&s| self.used & (1 << s) != 0 && self.refs[s] == idx)
    }
}

/// Bucket storage, selected by [`BucketLayout`].
enum BucketStore {
    /// 4-byte chain heads (see [`BucketLayout::Chain`]).
    Chain(Vec<u32>),
    /// 64-byte tagged lines (see [`BucketLayout::Inline`]).
    Inline(Vec<BucketLine>),
}

impl BucketStore {
    fn new(layout: BucketLayout, buckets: usize) -> Self {
        match layout {
            BucketLayout::Chain => BucketStore::Chain(vec![NIL; buckets]),
            BucketLayout::Inline => BucketStore::Inline(vec![BucketLine::EMPTY; buckets]),
        }
    }

    fn len(&self) -> usize {
        match self {
            BucketStore::Chain(heads) => heads.len(),
            BucketStore::Inline(lines) => lines.len(),
        }
    }

    fn layout(&self) -> BucketLayout {
        match self {
            BucketStore::Chain(_) => BucketLayout::Chain,
            BucketStore::Inline(_) => BucketLayout::Inline,
        }
    }
}

/// What one bucket probe found and what it cost (see
/// [`Partition::probe_bucket`]).
struct ProbeOutcome {
    /// The matching element, if present.
    found: Option<u32>,
    /// Whether the match came from an inline slot.
    inline_hit: bool,
    /// Overflow-chain elements visited.
    overflow_probes: u64,
    /// Inline tag matches whose key comparison failed.
    tag_false_positives: u64,
}

/// A successful lookup: the element id (for the later `Decref`) and the
/// handle through which the caller may read the value bytes.
#[derive(Debug, Clone, Copy)]
pub struct LookupHit {
    /// Id to pass back to [`Partition::decref`] when done reading.
    pub id: ElementId,
    /// Handle to the value bytes (valid until the matching `decref`).
    pub value: ValueHandle,
}

/// A successful insert reservation: space has been allocated and the element
/// linked in NOT-READY state; the caller copies the value bytes through
/// `value` and then calls [`Partition::mark_ready`].
#[derive(Debug, Clone, Copy)]
pub struct InsertReservation {
    /// Id to pass to [`Partition::mark_ready`] once the value is copied.
    pub id: ElementId,
    /// Handle the value bytes must be written through.
    pub value: ValueHandle,
}

/// Result of a [`Partition::export_matching`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExportOutcome {
    /// Matching elements were removed from the partition; each entry is a
    /// `(key, value bytes)` pair ready to be absorbed elsewhere.
    Extracted(Vec<(u64, Vec<u8>)>),
    /// Matching NOT-READY elements block the export; nothing was extracted.
    Pending {
        /// Number of in-flight inserts that must publish first.
        not_ready: usize,
    },
}

/// Why an insert could not be satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertError {
    /// The value is larger than the partition's entire byte budget.
    ValueTooLarge,
    /// Every remaining element is pinned by outstanding references, so
    /// nothing can be evicted to make room right now.
    OutOfMemory,
}

impl core::fmt::Display for InsertError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InsertError::ValueTooLarge => f.write_str("value larger than partition capacity"),
            InsertError::OutOfMemory => f.write_str("partition full of referenced elements"),
        }
    }
}

impl std::error::Error for InsertError {}

/// A single-threaded hash-table partition (see the crate docs).
pub struct Partition {
    buckets: BucketStore,
    bucket_mask: usize,
    slots: Vec<Slot>,
    free_head: u32,
    lru_head: u32,
    lru_tail: u32,
    /// Dense pool of linked element ids, maintained only under random
    /// eviction so victims can be drawn uniformly in O(1).
    random_pool: Vec<u32>,
    /// For each slot, its index in `random_pool` (only meaningful while
    /// linked and under random eviction).
    pool_index: Vec<u32>,
    /// Heads of the per-chunk intrusive membership lists: every linked
    /// element sits in exactly one list, chosen by `migration_chunk` of its
    /// key.  Maintained at insert/unlink time so a per-chunk export walks
    /// only the chunk's elements.
    chunk_heads: Vec<u32>,
    len: usize,
    eviction: EvictionPolicy,
    allocator: SlabAllocator,
    stats: PartitionStats,
    rng_state: u64,
}

impl Partition {
    /// Create an empty partition.
    pub fn new(config: PartitionConfig) -> Self {
        let buckets = config.buckets.next_power_of_two().max(1);
        assert!(
            config.migration_chunks.is_power_of_two()
                && config.migration_chunks <= MAX_MIGRATION_CHUNKS,
            "migration_chunks must be a power of two, at most {MAX_MIGRATION_CHUNKS}"
        );
        let alloc_config = SlabConfig {
            capacity_bytes: config.capacity_bytes,
            ..SlabConfig::default()
        };
        Partition {
            buckets: BucketStore::new(config.layout, buckets),
            bucket_mask: buckets - 1,
            slots: Vec::new(),
            free_head: NIL,
            lru_head: NIL,
            lru_tail: NIL,
            random_pool: Vec::new(),
            pool_index: Vec::new(),
            chunk_heads: vec![NIL; config.migration_chunks],
            len: 0,
            eviction: config.eviction,
            allocator: SlabAllocator::new(alloc_config),
            stats: PartitionStats::default(),
            rng_state: config.seed | 1,
        }
    }

    /// Number of elements currently linked into the table.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no element is linked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes of value storage currently allocated (including elements whose
    /// free has been deferred by outstanding references).
    pub fn bytes_in_use(&self) -> usize {
        self.allocator.bytes_in_use()
    }

    /// The partition's byte budget, if bounded.
    pub fn capacity_bytes(&self) -> Option<usize> {
        self.allocator.capacity()
    }

    /// Re-budget the partition at runtime: live re-partitioning re-splits
    /// the table's global byte budget over the new partition count.
    /// Lowering the budget evicts nothing immediately — the next insert
    /// evicts until it fits under the new budget.
    pub fn set_capacity_bytes(&mut self, capacity_bytes: Option<usize>) {
        self.allocator.set_capacity(capacity_bytes);
    }

    /// Number of migration chunks the per-chunk export index is keyed by.
    pub fn migration_chunks(&self) -> usize {
        self.chunk_heads.len()
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Bucket storage layout in force.
    pub fn bucket_layout(&self) -> BucketLayout {
        self.buckets.layout()
    }

    /// Eviction policy in force.
    pub fn eviction_policy(&self) -> EvictionPolicy {
        self.eviction
    }

    /// Operation statistics.
    pub fn stats(&self) -> PartitionStats {
        self.stats
    }

    /// Zero the operation statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    // ------------------------------------------------------------------
    // Core operations
    // ------------------------------------------------------------------

    /// Phase one of a two-phase operation: compute `key`'s bucket and tag
    /// without touching any table memory (see [`BucketRef`]).
    #[inline]
    pub fn prepare(&self, key: u64) -> BucketRef {
        let hash = hash64(key);
        BucketRef {
            key,
            bucket: bucket_from_hash(hash, self.bucket_mask + 1),
            tag: key_tag_from_hash(hash),
        }
    }

    /// Issue a software prefetch for the memory a prepared operation's
    /// probe will touch first, hinting it into cache before the execute
    /// phase.  Returns whether a prefetch was issued.
    ///
    /// Under the inline layout the target is the bucket's own tagged line
    /// — found by pure address arithmetic, so the staging pass reads *no*
    /// table memory and never stalls — and that one line resolves the
    /// common case entirely: a tag miss rejects without touching the
    /// element slab, a tag hit goes straight to the element.
    ///
    /// Under the chained layout the staging pass must first *read* the
    /// bucket's chain head (a potential DRAM access of its own) to learn
    /// the element address worth hinting; an empty bucket has nothing to
    /// fetch and reports `false`.
    #[inline]
    pub fn prefetch_prepared(&self, prep: &BucketRef) -> bool {
        match &self.buckets {
            BucketStore::Chain(heads) => {
                let head = heads[prep.bucket];
                if head == NIL {
                    return false;
                }
                cphash_cacheline::prefetch_read(&self.slots[head as usize]);
                true
            }
            BucketStore::Inline(lines) => {
                cphash_cacheline::prefetch_read(&lines[prep.bucket]);
                true
            }
        }
    }

    /// Second staging pass: prefetch the *other* cache lines executing the
    /// prepared operation will touch, assuming the chain head's line was
    /// already requested by [`Partition::prefetch_prepared`] (so reading it
    /// here is cheap or at least overlapped).
    ///
    /// For a key found at the chain head under LRU, execution moves the
    /// element to the list head — touching its `lru_prev`/`lru_next`
    /// neighbors, two cold lines a bucket prefetch never covers.  For a
    /// mismatched head, the walk continues to `bucket_next`.  Issuing these
    /// hints for a whole batch before executing it overlaps the second
    /// round of misses exactly like the first.  Returns the number of
    /// prefetches issued.
    #[inline]
    pub fn prefetch_neighbors(&self, prep: &BucketRef) -> u32 {
        match &self.buckets {
            BucketStore::Chain(heads) => {
                let head = heads[prep.bucket];
                if head == NIL {
                    return 0;
                }
                let e = self.slots[head as usize].element();
                let mut issued = 0u32;
                if e.key == prep.key {
                    if self.eviction.maintains_lru() {
                        if e.lru_prev != NIL {
                            cphash_cacheline::prefetch_read(&self.slots[e.lru_prev as usize]);
                            issued += 1;
                        }
                        if e.lru_next != NIL {
                            cphash_cacheline::prefetch_read(&self.slots[e.lru_next as usize]);
                            issued += 1;
                        }
                    }
                } else if e.bucket_next != NIL {
                    cphash_cacheline::prefetch_read(&self.slots[e.bucket_next as usize]);
                    issued += 1;
                }
                issued
            }
            BucketStore::Inline(lines) => {
                // The bucket line was already requested by
                // `prefetch_prepared`, so reading it here is warm or at
                // least overlapped; hint the element lines of every
                // tag-matching slot (almost always exactly the target).
                let line = &lines[prep.bucket];
                let mut issued = 0u32;
                for s in 0..INLINE_SLOTS {
                    if line.used & (1 << s) != 0 && line.tags[s] == prep.tag {
                        cphash_cacheline::prefetch_read(&self.slots[line.refs[s] as usize]);
                        issued += 1;
                    }
                }
                if issued == 0 && line.overflow != NIL {
                    cphash_cacheline::prefetch_read(&self.slots[line.overflow as usize]);
                    issued += 1;
                }
                issued
            }
        }
    }

    /// Look up `key`.  On a hit the element's reference count is
    /// incremented; the caller must eventually call [`Partition::decref`]
    /// with the returned id (this is the `Decref` message of the CPHash
    /// protocol).  Under LRU the element moves to the head of the LRU list.
    pub fn lookup(&mut self, key: u64) -> Option<LookupHit> {
        self.lookup_prepared(self.prepare(key))
    }

    /// Execute phase of a prepared lookup (see [`BucketRef`]).  Identical
    /// semantics to [`Partition::lookup`] with the hash precomputed.
    pub fn lookup_prepared(&mut self, prep: BucketRef) -> Option<LookupHit> {
        self.stats.lookups += 1;
        let idx = self.find_in_bucket(prep.key, prep.bucket, prep.tag)?;
        if self.slots[idx as usize].element().state != ElementState::Ready {
            // NOT-READY elements are invisible to lookups (§3.2).
            return None;
        }
        if self.eviction.maintains_lru() {
            self.lru_move_to_head(idx);
        }
        let e = self.slots[idx as usize].element_mut();
        e.refcount += 1;
        self.stats.hits += 1;
        Some(LookupHit {
            id: ElementId(idx),
            value: e.value,
        })
    }

    /// Check whether a READY element with `key` is present, without touching
    /// reference counts or the LRU list.
    pub fn contains(&self, key: u64) -> bool {
        self.find_linked(key)
            .map(|idx| self.slots[idx as usize].element().state == ElementState::Ready)
            .unwrap_or(false)
    }

    /// Reserve space for inserting `key` with a `size`-byte value.
    ///
    /// Mirrors the paper's INSERT path (§3.2): any existing element with the
    /// same key is removed first (so the table never holds duplicate keys),
    /// then memory is allocated — evicting victims as needed — and the new
    /// element is linked in NOT-READY state.  The caller copies the value
    /// through the returned handle and then calls [`Partition::mark_ready`].
    pub fn insert(&mut self, key: u64, size: usize) -> Result<InsertReservation, InsertError> {
        self.insert_prepared(self.prepare(key), size)
    }

    /// Execute phase of a prepared insert (see [`BucketRef`]).  Identical
    /// semantics to [`Partition::insert`] with the hash precomputed.
    pub fn insert_prepared(
        &mut self,
        prep: BucketRef,
        size: usize,
    ) -> Result<InsertReservation, InsertError> {
        let key = prep.key;
        self.stats.inserts += 1;
        // Remove any existing element with this key to avoid duplicates.
        if let Some(existing) = self.find_in_bucket(key, prep.bucket, prep.tag) {
            self.unlink(existing);
            self.stats.replacements += 1;
        }

        // Allocate, evicting until the value fits (or nothing is left to
        // evict).
        let value = loop {
            match self.allocator.allocate(size) {
                Some(v) => break v,
                None => {
                    if !self.evict_one() {
                        self.stats.failed_inserts += 1;
                        let budget = self.allocator.capacity().unwrap_or(usize::MAX);
                        return Err(if SlabAllocator::block_bytes_for(size) > budget {
                            InsertError::ValueTooLarge
                        } else {
                            InsertError::OutOfMemory
                        });
                    }
                }
            }
        };

        let bucket = prep.bucket;
        let chunk = migration_chunk(key, self.chunk_heads.len());
        let idx = self.alloc_slot(Element::new(key, value, bucket as u32, chunk as u32));
        // The new element holds one reference on behalf of the inserting
        // client until `mark_ready` releases it, so it cannot be freed out
        // from under the client while the value bytes are being copied.
        self.slots[idx as usize].element_mut().refcount = 1;
        self.link_into_bucket(idx, bucket, prep.tag);
        self.link_into_recency(idx);
        self.link_into_chunk(idx, chunk);
        self.len += 1;
        Ok(InsertReservation {
            id: ElementId(idx),
            value,
        })
    }

    /// Publish an element inserted via [`Partition::insert`]: mark the value
    /// READY (visible to lookups) and release the insertion reference.
    pub fn mark_ready(&mut self, id: ElementId) {
        let e = self.slots[id.0 as usize].element_mut();
        assert_eq!(
            e.state,
            ElementState::NotReady,
            "mark_ready on a READY element"
        );
        e.state = ElementState::Ready;
        self.decref(id);
    }

    /// Release one reference on an element (the CPHash `Decref` message).
    /// Frees the element's memory if it has been unlinked and this was the
    /// last reference.
    pub fn decref(&mut self, id: ElementId) {
        let e = self.slots[id.0 as usize].element_mut();
        assert!(e.refcount > 0, "decref without a matching reference");
        e.refcount -= 1;
        if e.refcount == 0 && !e.linked {
            self.release_slot(id.0);
        }
    }

    /// Remove `key` from the table. Returns `true` if an element was
    /// removed. Memory is freed immediately unless references are
    /// outstanding, in which case the free is deferred to the last
    /// [`Partition::decref`].
    pub fn delete(&mut self, key: u64) -> bool {
        self.delete_prepared(self.prepare(key))
    }

    /// Execute phase of a prepared delete (see [`BucketRef`]).  Identical
    /// semantics to [`Partition::delete`] with the hash precomputed.
    pub fn delete_prepared(&mut self, prep: BucketRef) -> bool {
        match self.find_in_bucket(prep.key, prep.bucket, prep.tag) {
            Some(idx) => {
                self.unlink(idx);
                self.stats.deletes += 1;
                true
            }
            None => false,
        }
    }

    /// Evict one element according to the eviction policy. Returns `false`
    /// when nothing is left to evict.
    pub fn evict_one(&mut self) -> bool {
        let victim = match self.eviction {
            EvictionPolicy::Lru => self.lru_tail,
            EvictionPolicy::Random => self.random_victim(),
        };
        if victim == NIL {
            return false;
        }
        self.unlink(victim);
        self.stats.evictions += 1;
        true
    }

    // ------------------------------------------------------------------
    // Safe value access helpers (used by LockHash, tests and the servers)
    // ------------------------------------------------------------------

    /// Copy `data` into a NOT-READY reservation and publish it.
    ///
    /// Safe because NOT-READY elements are invisible to lookups, so the only
    /// handle to the bytes is the reservation the caller got from
    /// [`Partition::insert`], and `&mut self` proves no other thread is
    /// inside this partition.
    pub fn fill_and_ready(&mut self, id: ElementId, data: &[u8]) {
        let e = self.slots[id.0 as usize].element();
        assert_eq!(
            e.state,
            ElementState::NotReady,
            "fill_and_ready on a READY element"
        );
        assert!(data.len() <= e.value.len(), "value larger than reservation");
        // SAFETY: see doc comment — the element is NOT-READY so no reader
        // holds the handle, and the partition is exclusively borrowed.
        unsafe { e.value.copy_from(data) };
        self.mark_ready(id);
    }

    /// Copy the value of a previously looked-up element into `out`.
    ///
    /// Safe because the caller's [`LookupHit`] holds a reference (the
    /// element cannot have been freed) and READY values are never written
    /// again (§3.2's protocol only writes values before `Ready`).
    pub fn read_value(&self, hit: &LookupHit, out: &mut Vec<u8>) {
        let e = self.slots[hit.id.0 as usize].element();
        assert!(e.refcount > 0, "read_value without a live reference");
        // SAFETY: see doc comment.
        let bytes = unsafe { e.value.as_slice() };
        out.clear();
        out.extend_from_slice(bytes);
    }

    /// Convenience for lock-based callers: look up `key`, copy its value
    /// into `out`, and release the reference before returning.
    /// Returns `true` on a hit.
    pub fn lookup_copy(&mut self, key: u64, out: &mut Vec<u8>) -> bool {
        match self.lookup(key) {
            Some(hit) => {
                self.read_value(&hit, out);
                self.decref(hit.id);
                true
            }
            None => false,
        }
    }

    /// Convenience for lock-based callers: insert `key` with `value` bytes,
    /// copying and publishing in one step.
    pub fn insert_copy(&mut self, key: u64, value: &[u8]) -> Result<(), InsertError> {
        let reservation = self.insert(key, value.len())?;
        self.fill_and_ready(reservation.id, value);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Live-migration support (export / absorb)
    // ------------------------------------------------------------------

    /// Extract every linked element whose key matches `leaving`, removing it
    /// from this partition and returning `(key, value bytes)` pairs.
    ///
    /// This is the server-side primitive behind online repartitioning: the
    /// owning server thread exports the keys that a new partition layout
    /// assigns elsewhere, and the destination absorbs them with
    /// [`Partition::absorb`].  Prefer [`Partition::export_chunk`] when the
    /// leaving set is confined to one migration chunk — this variant scans
    /// every slot.
    ///
    /// Elements still in NOT-READY state (an insert whose value copy is in
    /// flight) cannot be exported — their bytes are not yet valid — so if any
    /// matching element is NOT-READY, *nothing* is extracted and
    /// [`ExportOutcome::Pending`] reports how many inserts must finish first.
    /// The caller retries once the outstanding `Ready` messages have been
    /// processed, which keeps the export atomic per chunk.
    pub fn export_matching(&mut self, leaving: impl Fn(u64) -> bool) -> ExportOutcome {
        let (matching, not_ready) = self.gather_scan(&leaving);
        self.export_gathered(matching, not_ready, false)
    }

    /// Extract the linked elements of one migration chunk whose keys match
    /// `leaving`, using the per-chunk membership index: only the chunk's own
    /// elements are visited, never the rest of the table.  Semantics
    /// (NOT-READY deferral included) are identical to filtering
    /// [`Partition::export_matching`] by the chunk, which debug builds
    /// assert by cross-checking against the scan path.
    pub fn export_chunk(&mut self, chunk: usize, leaving: impl Fn(u64) -> bool) -> ExportOutcome {
        let (matching, not_ready) = self.gather_chunk(chunk, &leaving);
        #[cfg(debug_assertions)]
        self.cross_check_chunk_gather(chunk, &leaving, &matching, not_ready);
        self.export_gathered(matching, not_ready, false)
    }

    /// Like [`Partition::export_matching`], but matching NOT-READY elements
    /// are *dropped from the export* instead of deferring it.
    ///
    /// Only correct when the reservations can no longer publish — e.g. every
    /// client endpoint is gone during shutdown — otherwise a concurrent
    /// insert's key would be silently stranded on the old owner.
    pub fn export_matching_abandoning_reservations(
        &mut self,
        leaving: impl Fn(u64) -> bool,
    ) -> Vec<(u64, Vec<u8>)> {
        let (matching, not_ready) = self.gather_scan(&leaving);
        match self.export_gathered(matching, not_ready, true) {
            ExportOutcome::Extracted(entries) => entries,
            ExportOutcome::Pending { .. } => unreachable!("forced export never defers"),
        }
    }

    /// Like [`Partition::export_chunk`], but matching NOT-READY elements are
    /// *dropped from the export* instead of deferring it (shutdown path; see
    /// [`Partition::export_matching_abandoning_reservations`]).
    pub fn export_chunk_abandoning_reservations(
        &mut self,
        chunk: usize,
        leaving: impl Fn(u64) -> bool,
    ) -> Vec<(u64, Vec<u8>)> {
        let (matching, not_ready) = self.gather_chunk(chunk, &leaving);
        #[cfg(debug_assertions)]
        self.cross_check_chunk_gather(chunk, &leaving, &matching, not_ready);
        match self.export_gathered(matching, not_ready, true) {
            ExportOutcome::Extracted(entries) => entries,
            ExportOutcome::Pending { .. } => unreachable!("forced export never defers"),
        }
    }

    /// Collect the export candidates by scanning every slot (the legacy
    /// path, kept for whole-table exports and as the debug cross-check).
    fn gather_scan(&mut self, leaving: &impl Fn(u64) -> bool) -> (Vec<u32>, usize) {
        self.stats.full_export_scans += 1;
        let mut matching: Vec<u32> = Vec::new();
        let mut not_ready = 0usize;
        for (idx, slot) in self.slots.iter().enumerate() {
            self.stats.export_elements_visited += 1;
            if let Slot::Occupied(e) = slot {
                if e.linked && leaving(e.key) {
                    if e.state == ElementState::Ready {
                        matching.push(idx as u32);
                    } else {
                        not_ready += 1;
                    }
                }
            }
        }
        (matching, not_ready)
    }

    /// Collect the export candidates by walking one chunk's membership list.
    fn gather_chunk(&mut self, chunk: usize, leaving: &impl Fn(u64) -> bool) -> (Vec<u32>, usize) {
        let mut matching: Vec<u32> = Vec::new();
        let mut not_ready = 0usize;
        let mut cur = self.chunk_heads[chunk];
        while cur != NIL {
            self.stats.export_elements_visited += 1;
            let e = self.slots[cur as usize].element();
            debug_assert_eq!(e.chunk as usize, chunk, "element in wrong chunk list");
            if leaving(e.key) {
                if e.state == ElementState::Ready {
                    matching.push(cur);
                } else {
                    not_ready += 1;
                }
            }
            cur = e.chunk_next;
        }
        (matching, not_ready)
    }

    /// Debug-build cross-check: the per-chunk index walk must select exactly
    /// the candidates a full-table scan restricted to the chunk would.
    #[cfg(debug_assertions)]
    fn cross_check_chunk_gather(
        &self,
        chunk: usize,
        leaving: &impl Fn(u64) -> bool,
        matching: &[u32],
        not_ready: usize,
    ) {
        let chunks = self.chunk_heads.len();
        let mut scan_matching: Vec<u32> = Vec::new();
        let mut scan_not_ready = 0usize;
        for (idx, slot) in self.slots.iter().enumerate() {
            if let Slot::Occupied(e) = slot {
                if e.linked && migration_chunk(e.key, chunks) == chunk && leaving(e.key) {
                    if e.state == ElementState::Ready {
                        scan_matching.push(idx as u32);
                    } else {
                        scan_not_ready += 1;
                    }
                }
            }
        }
        let mut indexed: Vec<u32> = matching.to_vec();
        indexed.sort_unstable();
        scan_matching.sort_unstable();
        assert_eq!(
            indexed, scan_matching,
            "chunk index selected a different export set than the full scan"
        );
        assert_eq!(
            not_ready, scan_not_ready,
            "chunk index disagrees with the full scan about NOT-READY blockers"
        );
    }

    /// Extract a gathered candidate set (shared tail of both export paths).
    fn export_gathered(
        &mut self,
        matching: Vec<u32>,
        not_ready: usize,
        force: bool,
    ) -> ExportOutcome {
        if not_ready > 0 && !force {
            return ExportOutcome::Pending { not_ready };
        }
        let mut entries = Vec::with_capacity(matching.len());
        for idx in matching {
            let e = self.slots[idx as usize].element();
            // SAFETY: the element is READY and this partition is exclusively
            // borrowed, so the value bytes are fully written and stable (the
            // protocol never writes a READY value again).
            let bytes = unsafe { e.value.as_slice() }.to_vec();
            entries.push((e.key, bytes));
            self.unlink(idx);
            self.stats.exported += 1;
        }
        ExportOutcome::Extracted(entries)
    }

    /// Count of linked elements whose key matches `pred` (migration
    /// accounting and tests).
    pub fn count_matching(&self, pred: impl Fn(u64) -> bool) -> usize {
        self.slots
            .iter()
            .filter(|slot| matches!(slot, Slot::Occupied(e) if e.linked && pred(e.key)))
            .count()
    }

    /// Insert a migrated element, copying and publishing in one step.
    /// Replace semantics match [`Partition::insert_copy`]; the `absorbed`
    /// counter records the migration.
    pub fn absorb(&mut self, key: u64, value: &[u8]) -> Result<(), InsertError> {
        self.insert_copy(key, value)?;
        self.stats.absorbed += 1;
        Ok(())
    }

    /// Iterate over the keys of all READY elements (test/debug helper).
    pub fn keys(&self) -> Vec<u64> {
        let mut keys = Vec::with_capacity(self.len);
        for slot in &self.slots {
            if let Slot::Occupied(e) = slot {
                if e.linked && e.state == ElementState::Ready {
                    keys.push(e.key);
                }
            }
        }
        keys
    }

    /// Keys in least-recently-used → most-recently-used order (LRU policy
    /// only; test/debug helper).
    pub fn lru_order(&self) -> Vec<u64> {
        let mut keys = Vec::new();
        let mut cur = self.lru_tail;
        while cur != NIL {
            let e = self.slots[cur as usize].element();
            keys.push(e.key);
            cur = e.lru_prev;
        }
        keys
    }

    /// Verify every internal invariant; used by tests and debug assertions.
    ///
    /// Panics with a description of the first violated invariant.
    pub fn check_invariants(&self) {
        // Every bucket (inline slots + chain) is consistent and contains
        // only linked elements hashed to that bucket.
        let mut linked_seen = 0usize;
        match &self.buckets {
            BucketStore::Chain(heads) => {
                for (b, &head) in heads.iter().enumerate() {
                    linked_seen += self.check_chain(head, b);
                }
            }
            BucketStore::Inline(lines) => {
                for (b, line) in lines.iter().enumerate() {
                    for s in 0..INLINE_SLOTS {
                        if line.used & (1 << s) == 0 {
                            continue;
                        }
                        let e = self.slots[line.refs[s] as usize].element();
                        assert!(e.linked, "unlinked element in inline slot");
                        assert_eq!(e.bucket as usize, b, "inline element in wrong bucket");
                        assert_eq!(self.bucket_of(e.key), b, "element hashed to wrong bucket");
                        assert_eq!(line.tags[s], key_tag(e.key), "stale inline tag");
                        assert_eq!(e.bucket_prev, NIL, "inline resident with chain links");
                        assert_eq!(e.bucket_next, NIL, "inline resident with chain links");
                        linked_seen += 1;
                    }
                    if line.overflow != NIL {
                        assert_eq!(
                            line.used, LINE_FULL,
                            "free inline slot with a non-empty overflow chain"
                        );
                    }
                    linked_seen += self.check_chain(line.overflow, b);
                }
            }
        }
        assert_eq!(linked_seen, self.len, "len does not match bucket contents");

        // Every chunk list is consistent and together the lists cover
        // exactly the linked elements, each filed under its key's chunk.
        let chunks = self.chunk_heads.len();
        let mut chunk_seen = 0usize;
        for (c, &head) in self.chunk_heads.iter().enumerate() {
            let mut cur = head;
            let mut prev = NIL;
            while cur != NIL {
                let e = self.slots[cur as usize].element();
                assert!(e.linked, "unlinked element in chunk list");
                assert_eq!(e.chunk as usize, c, "element in wrong chunk list");
                assert_eq!(
                    migration_chunk(e.key, chunks),
                    c,
                    "element hashed to wrong chunk"
                );
                assert_eq!(e.chunk_prev, prev, "broken chunk back-pointer");
                chunk_seen += 1;
                prev = cur;
                cur = e.chunk_next;
            }
        }
        assert_eq!(chunk_seen, self.len, "chunk index does not cover the table");

        match self.eviction {
            EvictionPolicy::Lru => {
                // The LRU list contains exactly the linked elements.
                let mut count = 0usize;
                let mut cur = self.lru_head;
                let mut prev = NIL;
                while cur != NIL {
                    let e = self.slots[cur as usize].element();
                    assert!(e.linked, "unlinked element in LRU list");
                    assert_eq!(e.lru_prev, prev, "broken LRU back-pointer");
                    count += 1;
                    prev = cur;
                    cur = e.lru_next;
                }
                assert_eq!(prev, self.lru_tail, "LRU tail does not terminate the list");
                assert_eq!(count, self.len, "LRU list length mismatch");
            }
            EvictionPolicy::Random => {
                assert_eq!(
                    self.random_pool.len(),
                    self.len,
                    "random pool length mismatch"
                );
                for (i, &idx) in self.random_pool.iter().enumerate() {
                    assert_eq!(
                        self.pool_index[idx as usize] as usize, i,
                        "pool back-index broken"
                    );
                    assert!(self.slots[idx as usize].element().linked);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Internal helpers
    // ------------------------------------------------------------------

    /// Walk one bucket chain asserting its invariants; returns the number
    /// of elements on it (shared by both layouts' `check_invariants`).
    fn check_chain(&self, head: u32, bucket: usize) -> usize {
        let mut seen = 0usize;
        let mut cur = head;
        let mut prev = NIL;
        while cur != NIL {
            let e = self.slots[cur as usize].element();
            assert!(e.linked, "unlinked element in bucket chain");
            assert_eq!(e.bucket as usize, bucket, "element in wrong bucket");
            assert_eq!(e.bucket_prev, prev, "broken bucket back-pointer");
            assert_eq!(
                self.bucket_of(e.key),
                bucket,
                "element hashed to wrong bucket"
            );
            seen += 1;
            prev = cur;
            cur = e.bucket_next;
        }
        seen
    }

    fn bucket_of(&self, key: u64) -> usize {
        bucket_for_key(key, self.bucket_mask + 1)
    }

    fn find_linked(&self, key: u64) -> Option<u32> {
        let hash = hash64(key);
        self.probe_bucket(
            key,
            bucket_from_hash(hash, self.bucket_mask + 1),
            key_tag_from_hash(hash),
        )
        .found
    }

    /// Probe one bucket for `key` without touching statistics (shared by
    /// the read-only paths and [`Partition::find_in_bucket`]).
    fn probe_bucket(&self, key: u64, bucket: usize, tag: u8) -> ProbeOutcome {
        match &self.buckets {
            BucketStore::Chain(heads) => {
                let mut cur = heads[bucket];
                while cur != NIL {
                    let e = self.slots[cur as usize].element();
                    if e.key == key {
                        return ProbeOutcome {
                            found: Some(cur),
                            inline_hit: false,
                            overflow_probes: 0,
                            tag_false_positives: 0,
                        };
                    }
                    cur = e.bucket_next;
                }
                ProbeOutcome {
                    found: None,
                    inline_hit: false,
                    overflow_probes: 0,
                    tag_false_positives: 0,
                }
            }
            BucketStore::Inline(lines) => {
                let line = &lines[bucket];
                let mut tag_false_positives = 0u64;
                for s in 0..INLINE_SLOTS {
                    if line.used & (1 << s) != 0 && line.tags[s] == tag {
                        let idx = line.refs[s];
                        if self.slots[idx as usize].element().key == key {
                            return ProbeOutcome {
                                found: Some(idx),
                                inline_hit: true,
                                overflow_probes: 0,
                                tag_false_positives,
                            };
                        }
                        tag_false_positives += 1;
                    }
                }
                let mut overflow_probes = 0u64;
                let mut cur = line.overflow;
                while cur != NIL {
                    overflow_probes += 1;
                    let e = self.slots[cur as usize].element();
                    if e.key == key {
                        return ProbeOutcome {
                            found: Some(cur),
                            inline_hit: false,
                            overflow_probes,
                            tag_false_positives,
                        };
                    }
                    cur = e.bucket_next;
                }
                ProbeOutcome {
                    found: None,
                    inline_hit: false,
                    overflow_probes,
                    tag_false_positives,
                }
            }
        }
    }

    /// Probe one bucket for `key`, recording the probe-cost counters
    /// (inline hits, overflow hops, tag false positives).
    fn find_in_bucket(&mut self, key: u64, bucket: usize, tag: u8) -> Option<u32> {
        let probe = self.probe_bucket(key, bucket, tag);
        self.stats.overflow_probes += probe.overflow_probes;
        self.stats.tag_false_positives += probe.tag_false_positives;
        if probe.inline_hit {
            self.stats.inline_hits += 1;
        }
        probe.found
    }

    fn alloc_slot(&mut self, element: Element) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let next = match &self.slots[idx as usize] {
                Slot::Free { next_free } => *next_free,
                Slot::Occupied(_) => unreachable!("free list points at occupied slot"),
            };
            self.free_head = next;
            self.slots[idx as usize] = Slot::Occupied(element);
            idx
        } else {
            let idx = self.slots.len() as u32;
            assert!(idx != NIL, "partition slot space exhausted");
            self.slots.push(Slot::Occupied(element));
            self.pool_index.push(NIL);
            idx
        }
    }

    /// Free an element slot and its value memory. The element must already
    /// be unlinked and unreferenced.
    fn release_slot(&mut self, idx: u32) {
        let value = {
            let e = self.slots[idx as usize].element();
            debug_assert!(!e.linked);
            debug_assert_eq!(e.refcount, 0);
            e.value
        };
        self.allocator.free(value);
        self.slots[idx as usize] = Slot::Free {
            next_free: self.free_head,
        };
        self.free_head = idx;
    }

    fn link_into_bucket(&mut self, idx: u32, bucket: usize, tag: u8) {
        {
            let e = self.slots[idx as usize].element_mut();
            e.bucket = bucket as u32;
            e.bucket_next = NIL;
            e.bucket_prev = NIL;
        }
        match &mut self.buckets {
            BucketStore::Chain(heads) => {
                let head = heads[bucket];
                self.slots[idx as usize].element_mut().bucket_next = head;
                if head != NIL {
                    self.slots[head as usize].element_mut().bucket_prev = idx;
                }
                heads[bucket] = idx;
            }
            BucketStore::Inline(lines) => {
                let line = &mut lines[bucket];
                if let Some(s) = line.free_slot() {
                    // Inline residents sit in the line itself; their chain
                    // pointers stay NIL.
                    line.used |= 1 << s;
                    line.tags[s] = tag;
                    line.refs[s] = idx;
                } else {
                    let head = line.overflow;
                    self.slots[idx as usize].element_mut().bucket_next = head;
                    if head != NIL {
                        self.slots[head as usize].element_mut().bucket_prev = idx;
                    }
                    line.overflow = idx;
                }
            }
        }
    }

    fn unlink_from_bucket(&mut self, idx: u32) {
        let (prev, next, bucket) = {
            let e = self.slots[idx as usize].element();
            (e.bucket_prev, e.bucket_next, e.bucket as usize)
        };
        match &mut self.buckets {
            BucketStore::Chain(heads) => {
                if prev != NIL {
                    self.slots[prev as usize].element_mut().bucket_next = next;
                } else {
                    heads[bucket] = next;
                }
                if next != NIL {
                    self.slots[next as usize].element_mut().bucket_prev = prev;
                }
            }
            BucketStore::Inline(lines) => {
                let line = &mut lines[bucket];
                if let Some(s) = line.slot_of_ref(idx) {
                    debug_assert!(
                        prev == NIL && next == NIL,
                        "inline resident with chain links"
                    );
                    line.used &= !(1 << s);
                    // Keep the layout invariant: no inline slot stays free
                    // while the overflow chain is non-empty — promote the
                    // chain head into the freed slot.
                    let promoted = line.overflow;
                    if promoted != NIL {
                        let promoted_next = self.slots[promoted as usize].element().bucket_next;
                        line.overflow = promoted_next;
                        if promoted_next != NIL {
                            self.slots[promoted_next as usize].element_mut().bucket_prev = NIL;
                        }
                        let promoted_key = {
                            let e = self.slots[promoted as usize].element_mut();
                            e.bucket_next = NIL;
                            e.bucket_prev = NIL;
                            e.key
                        };
                        line.used |= 1 << s;
                        line.tags[s] = key_tag(promoted_key);
                        line.refs[s] = promoted;
                    }
                } else {
                    if prev != NIL {
                        self.slots[prev as usize].element_mut().bucket_next = next;
                    } else {
                        line.overflow = next;
                    }
                    if next != NIL {
                        self.slots[next as usize].element_mut().bucket_prev = prev;
                    }
                }
            }
        }
        let e = self.slots[idx as usize].element_mut();
        e.bucket_next = NIL;
        e.bucket_prev = NIL;
    }

    fn link_into_chunk(&mut self, idx: u32, chunk: usize) {
        let head = self.chunk_heads[chunk];
        {
            let e = self.slots[idx as usize].element_mut();
            e.chunk_next = head;
            e.chunk_prev = NIL;
        }
        if head != NIL {
            self.slots[head as usize].element_mut().chunk_prev = idx;
        }
        self.chunk_heads[chunk] = idx;
    }

    fn unlink_from_chunk(&mut self, idx: u32) {
        let (prev, next, chunk) = {
            let e = self.slots[idx as usize].element();
            (e.chunk_prev, e.chunk_next, e.chunk as usize)
        };
        if prev != NIL {
            self.slots[prev as usize].element_mut().chunk_next = next;
        } else {
            self.chunk_heads[chunk] = next;
        }
        if next != NIL {
            self.slots[next as usize].element_mut().chunk_prev = prev;
        }
        let e = self.slots[idx as usize].element_mut();
        e.chunk_next = NIL;
        e.chunk_prev = NIL;
    }

    fn link_into_recency(&mut self, idx: u32) {
        match self.eviction {
            EvictionPolicy::Lru => self.lru_push_head(idx),
            EvictionPolicy::Random => {
                self.pool_index[idx as usize] = self.random_pool.len() as u32;
                self.random_pool.push(idx);
            }
        }
    }

    fn unlink_from_recency(&mut self, idx: u32) {
        match self.eviction {
            EvictionPolicy::Lru => self.lru_remove(idx),
            EvictionPolicy::Random => {
                let pool_idx = self.pool_index[idx as usize] as usize;
                let last = *self.random_pool.last().expect("pool not empty");
                self.random_pool.swap_remove(pool_idx);
                if last != idx {
                    self.pool_index[last as usize] = pool_idx as u32;
                }
                self.pool_index[idx as usize] = NIL;
            }
        }
    }

    /// Unlink an element from the table (bucket + recency structures).
    /// Frees it immediately if unreferenced, otherwise defers.
    fn unlink(&mut self, idx: u32) {
        self.unlink_from_bucket(idx);
        self.unlink_from_recency(idx);
        self.unlink_from_chunk(idx);
        self.len -= 1;
        let refcount = {
            let e = self.slots[idx as usize].element_mut();
            e.linked = false;
            e.refcount
        };
        if refcount == 0 {
            self.release_slot(idx);
        } else {
            self.stats.deferred_frees += 1;
        }
    }

    fn lru_push_head(&mut self, idx: u32) {
        let old_head = self.lru_head;
        {
            let e = self.slots[idx as usize].element_mut();
            e.lru_next = old_head;
            e.lru_prev = NIL;
        }
        if old_head != NIL {
            self.slots[old_head as usize].element_mut().lru_prev = idx;
        }
        self.lru_head = idx;
        if self.lru_tail == NIL {
            self.lru_tail = idx;
        }
    }

    fn lru_remove(&mut self, idx: u32) {
        let (prev, next) = {
            let e = self.slots[idx as usize].element();
            (e.lru_prev, e.lru_next)
        };
        if prev != NIL {
            self.slots[prev as usize].element_mut().lru_next = next;
        } else {
            self.lru_head = next;
        }
        if next != NIL {
            self.slots[next as usize].element_mut().lru_prev = prev;
        } else {
            self.lru_tail = prev;
        }
        let e = self.slots[idx as usize].element_mut();
        e.lru_prev = NIL;
        e.lru_next = NIL;
    }

    fn lru_move_to_head(&mut self, idx: u32) {
        if self.lru_head == idx {
            return;
        }
        self.lru_remove(idx);
        self.lru_push_head(idx);
    }

    fn random_victim(&mut self) -> u32 {
        if self.random_pool.is_empty() {
            // Under LRU policy the pool is unused; fall back to the tail.
            return self.lru_tail;
        }
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        self.random_pool[(r % self.random_pool.len() as u64) as usize]
    }
}

impl Drop for Partition {
    fn drop(&mut self) {
        // Return every outstanding value to the allocator (including
        // deferred-free elements still pinned by references — at partition
        // teardown those references are by definition dead).
        for slot in &mut self.slots {
            if let Slot::Occupied(e) = slot {
                self.allocator.free(e.value);
            }
        }
        self.slots.clear();
    }
}

impl core::fmt::Debug for Partition {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Partition")
            .field("len", &self.len)
            .field("buckets", &self.buckets.len())
            .field("layout", &self.buckets.layout())
            .field("bytes_in_use", &self.bytes_in_use())
            .field("eviction", &self.eviction)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(capacity: Option<usize>) -> Partition {
        Partition::new(PartitionConfig::new(64, capacity))
    }

    #[test]
    fn insert_then_lookup_round_trip() {
        let mut p = small(None);
        let r = p.insert(7, 8).unwrap();
        p.fill_and_ready(r.id, &77u64.to_le_bytes());
        let hit = p.lookup(7).expect("key present");
        let mut buf = Vec::new();
        p.read_value(&hit, &mut buf);
        assert_eq!(buf, 77u64.to_le_bytes());
        p.decref(hit.id);
        assert_eq!(p.len(), 1);
        assert!(p.contains(7));
        assert!(!p.contains(8));
        p.check_invariants();
    }

    #[test]
    fn not_ready_elements_are_invisible() {
        let mut p = small(None);
        let r = p.insert(1, 8).unwrap();
        assert!(
            p.lookup(1).is_none(),
            "NOT-READY element must not be returned"
        );
        assert!(!p.contains(1));
        p.fill_and_ready(r.id, &[1; 8]);
        let first = p.lookup(1).expect("READY element is visible");
        let second = p.lookup(1).expect("repeat lookup also hits");
        p.decref(first.id);
        p.decref(second.id);
        p.check_invariants();
    }

    #[test]
    fn duplicate_insert_replaces_old_value() {
        let mut p = small(None);
        p.insert_copy(5, &1u64.to_le_bytes()).unwrap();
        p.insert_copy(5, &2u64.to_le_bytes()).unwrap();
        assert_eq!(p.len(), 1);
        let mut buf = Vec::new();
        assert!(p.lookup_copy(5, &mut buf));
        assert_eq!(buf, 2u64.to_le_bytes());
        assert_eq!(p.stats().replacements, 1);
        p.check_invariants();
    }

    #[test]
    fn delete_removes_and_reports() {
        let mut p = small(None);
        p.insert_copy(9, &[0; 16]).unwrap();
        assert!(p.delete(9));
        assert!(!p.delete(9));
        assert!(!p.contains(9));
        assert_eq!(p.len(), 0);
        assert_eq!(p.bytes_in_use(), 0, "memory reclaimed on delete");
        p.check_invariants();
    }

    #[test]
    fn lru_eviction_follows_recency() {
        // Capacity of exactly 4 × 8-byte values.
        let mut p = small(Some(32));
        for key in 0..4u64 {
            p.insert_copy(key, &key.to_le_bytes()).unwrap();
        }
        assert_eq!(p.len(), 4);
        // Touch key 0 so it becomes most-recently used.
        let mut buf = Vec::new();
        assert!(p.lookup_copy(0, &mut buf));
        // Inserting a 5th value evicts key 1 (the least recently used).
        p.insert_copy(100, &[9; 8]).unwrap();
        assert!(p.contains(0), "recently used key survives");
        assert!(!p.contains(1), "LRU victim evicted");
        assert!(p.contains(2) && p.contains(3) && p.contains(100));
        assert_eq!(p.stats().evictions, 1);
        p.check_invariants();
    }

    #[test]
    fn lru_order_is_observable() {
        let mut p = small(None);
        for key in 0..3u64 {
            p.insert_copy(key, &[0; 8]).unwrap();
        }
        // Order (LRU → MRU): 0, 1, 2.
        assert_eq!(p.lru_order(), vec![0, 1, 2]);
        let mut buf = Vec::new();
        p.lookup_copy(0, &mut buf);
        assert_eq!(p.lru_order(), vec![1, 2, 0]);
    }

    #[test]
    fn random_eviction_keeps_count_bounded() {
        let mut p = Partition::new(
            PartitionConfig::new(64, Some(64)).with_eviction(EvictionPolicy::Random),
        );
        for key in 0..100u64 {
            p.insert_copy(key, &key.to_le_bytes()).unwrap();
            assert!(
                p.len() <= 8,
                "capacity 64 B / 8 B values = at most 8 elements"
            );
            p.check_invariants();
        }
        assert!(p.stats().evictions >= 92);
        assert_eq!(p.eviction_policy(), EvictionPolicy::Random);
    }

    #[test]
    fn deferred_free_protects_referenced_values() {
        let mut p = small(Some(16));
        p.insert_copy(1, &11u64.to_le_bytes()).unwrap();
        p.insert_copy(2, &22u64.to_le_bytes()).unwrap();
        // Hold a reference to key 1's value, then touch key 2 so that key 1
        // becomes the LRU victim.
        let hit = p.lookup(1).unwrap();
        let mut buf = Vec::new();
        assert!(p.lookup_copy(2, &mut buf));
        // Inserting key 3 forces eviction of key 1 (referenced → deferred)
        // and then key 2 (freed immediately).
        p.insert_copy(3, &[7; 8]).unwrap();
        assert!(!p.contains(1) && !p.contains(2));
        assert!(p.contains(3));
        // The referenced value's memory must still be intact.
        p.read_value(&hit, &mut buf);
        assert_eq!(buf, 11u64.to_le_bytes());
        assert_eq!(p.stats().deferred_frees, 1);
        // Dropping the reference releases the memory.
        let before = p.bytes_in_use();
        p.decref(hit.id);
        assert!(p.bytes_in_use() < before);
        p.check_invariants();
    }

    #[test]
    fn insert_fails_when_everything_is_pinned() {
        let mut p = small(Some(16));
        p.insert_copy(1, &[1; 8]).unwrap();
        p.insert_copy(2, &[2; 8]).unwrap();
        let _hold1 = p.lookup(1).unwrap();
        let _hold2 = p.lookup(2).unwrap();
        // Evicting the pinned elements unlinks them but releases no bytes,
        // so a big insert cannot succeed.
        let err = p.insert(3, 16).unwrap_err();
        assert_eq!(err, InsertError::OutOfMemory);
        assert_eq!(p.stats().failed_inserts, 1);
    }

    #[test]
    fn value_larger_than_capacity_is_rejected() {
        let mut p = small(Some(64));
        let err = p.insert(1, 1024).unwrap_err();
        assert_eq!(err, InsertError::ValueTooLarge);
        assert!(format!("{err}").contains("capacity"));
    }

    #[test]
    fn unbounded_partition_never_evicts() {
        let mut p = small(None);
        for key in 0..1000u64 {
            p.insert_copy(key, &key.to_le_bytes()).unwrap();
        }
        assert_eq!(p.len(), 1000);
        assert_eq!(p.stats().evictions, 0);
        assert_eq!(p.capacity_bytes(), None);
        p.check_invariants();
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut p = small(None);
        p.insert_copy(1, &[0; 8]).unwrap();
        let mut buf = Vec::new();
        assert!(p.lookup_copy(1, &mut buf));
        assert!(!p.lookup_copy(2, &mut buf));
        let s = p.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.inserts, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        p.reset_stats();
        assert_eq!(p.stats().lookups, 0);
    }

    #[test]
    fn slot_reuse_after_delete() {
        let mut p = small(None);
        for round in 0..10 {
            for key in 0..50u64 {
                p.insert_copy(key + round * 1000, &[0; 8]).unwrap();
            }
            for key in 0..50u64 {
                assert!(p.delete(key + round * 1000));
            }
        }
        assert!(p.is_empty());
        p.check_invariants();
    }

    #[test]
    fn evicting_a_not_ready_reservation_defers_until_ready() {
        let mut p = small(Some(16));
        // Reserve space for key 2 but do not fill it yet; it is the oldest
        // element and therefore the first LRU victim.
        let r = p.insert(2, 8).unwrap();
        p.insert_copy(1, &[1; 8]).unwrap();
        // Inserting key 3 forces eviction of the NOT-READY reservation
        // (whose memory is pinned by the insertion reference) and of key 1.
        p.insert_copy(3, &[3; 8]).unwrap();
        assert!(!p.contains(2));
        assert!(p.contains(3));
        let bytes_before = p.bytes_in_use();
        // Completing the insert on the now-unlinked element must not crash
        // and must release its deferred memory.
        p.fill_and_ready(r.id, &[2; 8]);
        assert!(!p.contains(2), "element was evicted before it became ready");
        assert!(p.bytes_in_use() < bytes_before);
        p.check_invariants();
    }

    #[test]
    #[should_panic(expected = "without a matching reference")]
    fn double_decref_is_caught() {
        let mut p = small(None);
        p.insert_copy(1, &[0; 8]).unwrap();
        let hit = p.lookup(1).unwrap();
        p.decref(hit.id);
        p.decref(hit.id);
    }

    #[test]
    fn two_phase_operations_match_their_single_phase_forms() {
        for layout in [BucketLayout::Chain, BucketLayout::Inline] {
            two_phase_matches_single_phase(layout);
        }
    }

    fn two_phase_matches_single_phase(layout: BucketLayout) {
        let config = PartitionConfig::new(64, None).with_layout(layout);
        let mut direct = Partition::new(config);
        let mut staged = Partition::new(config);
        assert_eq!(staged.bucket_layout(), layout);
        for key in 0..200u64 {
            // Stage a whole batch of prepares (with prefetches), then
            // execute — the server pipeline's access pattern.
            let prep = staged.prepare(key);
            assert_eq!(prep.key(), key);
            assert!(prep.bucket() < staged.bucket_count());
            assert_eq!(prep.tag(), crate::hash::key_tag(key));
            staged.prefetch_prepared(&prep);
            let r1 = staged.insert_prepared(prep, 8).unwrap();
            staged.fill_and_ready(r1.id, &key.to_le_bytes());
            let r2 = direct.insert(key, 8).unwrap();
            direct.fill_and_ready(r2.id, &key.to_le_bytes());
        }
        for key in 0..220u64 {
            let prep = staged.prepare(key);
            let prefetched = staged.prefetch_prepared(&prep);
            let a = staged.lookup_prepared(prep);
            let b = direct.lookup(key);
            assert_eq!(a.is_some(), b.is_some(), "key {key}");
            if let (Some(a), Some(b)) = (&a, &b) {
                let (mut va, mut vb) = (Vec::new(), Vec::new());
                staged.read_value(a, &mut va);
                direct.read_value(b, &mut vb);
                assert_eq!(va, vb);
                assert!(prefetched, "present key's bucket chain was prefetchable");
            }
            if let Some(a) = a {
                staged.decref(a.id);
            }
            if let Some(b) = b {
                direct.decref(b.id);
            }
        }
        for key in (0..200u64).step_by(3) {
            let prep = staged.prepare(key);
            assert_eq!(staged.delete_prepared(prep), direct.delete(key));
        }
        assert_eq!(staged.len(), direct.len());
        assert_eq!(staged.lru_order(), direct.lru_order());
        staged.check_invariants();
        direct.check_invariants();
    }

    #[test]
    fn prefetch_of_an_empty_bucket_reports_nothing_to_fetch() {
        // Chained layout: the staging pass reads the chain head and finds
        // nothing worth hinting.
        let p = Partition::new(PartitionConfig::new(64, None).with_layout(BucketLayout::Chain));
        let prep = p.prepare(1);
        assert!(!p.prefetch_prepared(&prep), "empty table has no chains");
    }

    #[test]
    fn inline_prefetch_always_hints_the_bucket_line() {
        // Inline layout: the prefetch target is the bucket's own line,
        // computed without reading table memory — always issued, even on
        // an empty table (the line itself answers "absent").
        let p = Partition::new(PartitionConfig::new(64, None).with_layout(BucketLayout::Inline));
        let prep = p.prepare(1);
        assert!(p.prefetch_prepared(&prep));
    }

    #[test]
    fn bucket_layout_names_round_trip_and_env_falls_back() {
        for layout in [BucketLayout::Chain, BucketLayout::Inline] {
            assert_eq!(BucketLayout::parse(layout.as_str()), Ok(layout));
            assert_eq!(format!("{layout}"), layout.as_str());
        }
        assert_eq!(BucketLayout::parse("Inline"), Ok(BucketLayout::Inline));
        assert_eq!(BucketLayout::parse("chained"), Ok(BucketLayout::Chain));
        assert!(BucketLayout::parse("linear-probing").is_err());
        assert_eq!(BucketLayout::default(), BucketLayout::Inline);
    }

    #[test]
    fn inline_bucket_overflows_past_the_line_and_promotes_on_free() {
        // A single-bucket partition forces every key into one line: the
        // first INLINE_SLOTS keys live inline, the rest chain behind it.
        let mut p = Partition::new(PartitionConfig::new(1, None).with_layout(BucketLayout::Inline));
        let total = INLINE_SLOTS as u64 + 5;
        for key in 0..total {
            p.insert_copy(key, &key.to_le_bytes()).unwrap();
            p.check_invariants();
        }
        assert_eq!(p.len() as u64, total);
        let mut buf = Vec::new();
        for key in 0..total {
            assert!(p.lookup_copy(key, &mut buf), "key {key}");
            assert_eq!(buf, key.to_le_bytes());
        }
        let s = p.stats();
        assert!(s.inline_hits > 0, "some probes must resolve inline");
        assert!(
            s.overflow_probes > 0,
            "an over-full bucket must walk its chain"
        );
        // Deleting inline residents promotes chain elements into the line;
        // check_invariants asserts no slot stays free while the chain is
        // non-empty.
        for key in 0..total {
            assert!(p.delete(key), "key {key}");
            p.check_invariants();
        }
        assert!(p.is_empty());
    }

    #[test]
    fn chain_layout_reports_no_inline_counters() {
        let mut p = Partition::new(PartitionConfig::new(1, None).with_layout(BucketLayout::Chain));
        for key in 0..10u64 {
            p.insert_copy(key, &key.to_le_bytes()).unwrap();
        }
        let mut buf = Vec::new();
        for key in 0..10u64 {
            assert!(p.lookup_copy(key, &mut buf));
        }
        let s = p.stats();
        assert_eq!(s.inline_hits, 0);
        assert_eq!(s.overflow_probes, 0);
        assert_eq!(s.tag_false_positives, 0);
        p.check_invariants();
    }

    #[test]
    fn inline_and_chain_layouts_agree_under_churn_and_eviction() {
        // Same bounded budget, same operation sequence: every observable
        // (hit/miss, values, length, LRU order) must match exactly —
        // recency structures are layout-independent.
        let mut chain =
            Partition::new(PartitionConfig::new(16, Some(512)).with_layout(BucketLayout::Chain));
        let mut inline =
            Partition::new(PartitionConfig::new(16, Some(512)).with_layout(BucketLayout::Inline));
        let mut state = 0x9E37_79B9u64;
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for step in 0..4_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (state >> 33) % 96;
            match step % 5 {
                0 | 1 => {
                    let r1 = chain.insert_copy(key, &key.to_le_bytes());
                    let r2 = inline.insert_copy(key, &key.to_le_bytes());
                    assert_eq!(r1.is_ok(), r2.is_ok());
                }
                2 | 3 => {
                    assert_eq!(
                        chain.lookup_copy(key, &mut a),
                        inline.lookup_copy(key, &mut b)
                    );
                    assert_eq!(a, b);
                }
                _ => assert_eq!(chain.delete(key), inline.delete(key)),
            }
            if step % 256 == 0 {
                chain.check_invariants();
                inline.check_invariants();
            }
        }
        assert_eq!(chain.len(), inline.len());
        assert_eq!(chain.lru_order(), inline.lru_order());
        chain.check_invariants();
        inline.check_invariants();
    }

    #[test]
    fn export_and_absorb_move_elements_between_partitions() {
        let mut source = small(None);
        let mut dest = small(None);
        for key in 0..100u64 {
            source.insert_copy(key, &key.to_le_bytes()).unwrap();
        }
        let outcome = source.export_matching(|k| k % 2 == 0);
        let entries = match outcome {
            ExportOutcome::Extracted(entries) => entries,
            other => panic!("expected extraction, got {other:?}"),
        };
        assert_eq!(entries.len(), 50);
        assert_eq!(source.len(), 50);
        assert_eq!(source.stats().exported, 50);
        for (key, value) in &entries {
            assert_eq!(value.as_slice(), key.to_le_bytes());
            assert!(!source.contains(*key), "exported key still at source");
            dest.absorb(*key, value).unwrap();
        }
        assert_eq!(dest.len(), 50);
        assert_eq!(dest.stats().absorbed, 50);
        let mut buf = Vec::new();
        assert!(dest.lookup_copy(42, &mut buf));
        assert_eq!(buf, 42u64.to_le_bytes());
        source.check_invariants();
        dest.check_invariants();
    }

    #[test]
    fn export_defers_while_inserts_are_in_flight() {
        let mut p = small(None);
        p.insert_copy(2, &[1; 8]).unwrap();
        let r = p.insert(4, 8).unwrap();
        assert_eq!(
            p.export_matching(|k| k % 2 == 0),
            ExportOutcome::Pending { not_ready: 1 }
        );
        assert!(p.contains(2), "pending export must not remove anything");
        p.fill_and_ready(r.id, &[4; 8]);
        match p.export_matching(|k| k % 2 == 0) {
            ExportOutcome::Extracted(entries) => assert_eq!(entries.len(), 2),
            other => panic!("expected extraction, got {other:?}"),
        }
        assert!(p.is_empty());
        p.check_invariants();
    }

    #[test]
    fn exported_values_survive_outstanding_references() {
        // A reader holding a reference across the export must still see the
        // original bytes (deferred free), while the export's copy is
        // independent.
        let mut p = small(None);
        p.insert_copy(8, &88u64.to_le_bytes()).unwrap();
        let hit = p.lookup(8).unwrap();
        let entries = match p.export_matching(|_| true) {
            ExportOutcome::Extracted(e) => e,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(entries, vec![(8, 88u64.to_le_bytes().to_vec())]);
        let mut buf = Vec::new();
        p.read_value(&hit, &mut buf);
        assert_eq!(buf, 88u64.to_le_bytes());
        p.decref(hit.id);
        assert_eq!(p.bytes_in_use(), 0);
        p.check_invariants();
    }

    #[test]
    fn forced_export_abandons_dead_reservations() {
        let mut p = small(None);
        p.insert_copy(2, &[1; 8]).unwrap();
        let _dead_reservation = p.insert(4, 8).unwrap();
        let entries = p.export_matching_abandoning_reservations(|k| k % 2 == 0);
        // The READY element moves; the NOT-READY reservation stays behind.
        assert_eq!(entries, vec![(2, vec![1; 8])]);
        assert!(!p.contains(2));
        assert_eq!(p.len(), 1, "the abandoned reservation is still linked");
        p.check_invariants();
    }

    #[test]
    fn export_chunk_touches_only_the_chunks_elements() {
        use crate::hash::migration_chunk;
        let chunks = 16;
        let mut p = Partition::new(PartitionConfig::new(1024, None).with_migration_chunks(chunks));
        const N: u64 = 4_000;
        for key in 0..N {
            p.insert_copy(key, &key.to_le_bytes()).unwrap();
        }
        p.reset_stats();

        let target = 3usize;
        let expected: Vec<u64> = (0..N)
            .filter(|&k| migration_chunk(k, chunks) == target && k % 2 == 0)
            .collect();
        let entries = match p.export_chunk(target, |k| k % 2 == 0) {
            ExportOutcome::Extracted(entries) => entries,
            other => panic!("expected extraction, got {other:?}"),
        };
        let mut got: Vec<u64> = entries.iter().map(|(k, _)| *k).collect();
        got.sort_unstable();
        assert_eq!(got, expected);

        // The acceptance criterion: no full-table scan happened, and the
        // walk visited only the chunk's population (~N/chunks elements),
        // not the N slots a scan would touch.
        let s = p.stats();
        assert_eq!(s.full_export_scans, 0, "chunk export must not scan");
        assert!(
            s.export_elements_visited < N / chunks as u64 * 2,
            "visited {} elements for a chunk holding ~{}",
            s.export_elements_visited,
            N / chunks as u64
        );
        p.check_invariants();

        // The scan path, by contrast, visits every slot and says so.
        p.reset_stats();
        match p.export_matching(|k| migration_chunk(k, chunks) == target) {
            ExportOutcome::Extracted(entries) => assert!(entries.len() < 300),
            other => panic!("expected extraction, got {other:?}"),
        }
        let s = p.stats();
        assert_eq!(s.full_export_scans, 1);
        assert!(s.export_elements_visited >= N - expected.len() as u64);
        p.check_invariants();
    }

    #[test]
    fn export_chunk_defers_on_not_ready_and_abandons_when_forced() {
        use crate::hash::migration_chunk;
        let chunks = 8;
        let mut p = Partition::new(PartitionConfig::new(64, None).with_migration_chunks(chunks));
        // Find two keys in the same chunk.
        let target = 0usize;
        let mut in_chunk = (0..).filter(|&k| migration_chunk(k, chunks) == target);
        let ready_key = in_chunk.next().unwrap();
        let pending_key = in_chunk.next().unwrap();
        p.insert_copy(ready_key, &[1; 8]).unwrap();
        let r = p.insert(pending_key, 8).unwrap();
        assert_eq!(
            p.export_chunk(target, |_| true),
            ExportOutcome::Pending { not_ready: 1 }
        );
        assert!(p.contains(ready_key), "pending export must not remove");
        // Forced export moves the READY element and strands the reservation.
        let entries = p.export_chunk_abandoning_reservations(target, |_| true);
        assert_eq!(entries, vec![(ready_key, vec![1; 8])]);
        assert_eq!(p.len(), 1);
        p.fill_and_ready(r.id, &[2; 8]);
        p.check_invariants();
    }

    #[test]
    fn chunk_index_survives_churn_and_eviction() {
        let chunks = 8;
        let mut p =
            Partition::new(PartitionConfig::new(64, Some(256)).with_migration_chunks(chunks));
        assert_eq!(p.migration_chunks(), chunks);
        for round in 0..20u64 {
            for key in 0..64u64 {
                p.insert_copy(round * 1_000 + key, &[0; 8]).unwrap();
            }
            for key in 0..16u64 {
                p.delete(round * 1_000 + key);
            }
            p.check_invariants();
        }
        // Export every chunk; everything must leave, through the index.
        p.reset_stats();
        let mut total = 0usize;
        for chunk in 0..chunks {
            match p.export_chunk(chunk, |_| true) {
                ExportOutcome::Extracted(entries) => total += entries.len(),
                other => panic!("chunk {chunk}: unexpected {other:?}"),
            }
        }
        assert_eq!(total, p.stats().exported as usize);
        assert!(p.is_empty());
        assert_eq!(p.stats().full_export_scans, 0);
        p.check_invariants();
    }

    #[test]
    fn capacity_rebudget_applies_to_future_inserts() {
        let mut p = small(Some(64));
        for key in 0..8u64 {
            p.insert_copy(key, &key.to_le_bytes()).unwrap();
        }
        assert_eq!(p.len(), 8);
        // Halve the budget: nothing is evicted eagerly...
        p.set_capacity_bytes(Some(32));
        assert_eq!(p.capacity_bytes(), Some(32));
        assert_eq!(p.len(), 8);
        // ...but the next insert evicts down under the new budget.
        p.insert_copy(100, &[9; 8]).unwrap();
        assert!(p.len() <= 4, "len {} exceeds the new budget", p.len());
        p.check_invariants();
    }

    #[test]
    fn count_matching_counts_linked_elements() {
        let mut p = small(None);
        for key in 0..10u64 {
            p.insert_copy(key, &[0; 8]).unwrap();
        }
        assert_eq!(p.count_matching(|k| k < 3), 3);
        assert_eq!(p.count_matching(|_| true), 10);
        p.delete(0);
        assert_eq!(p.count_matching(|k| k < 3), 2);
    }

    #[test]
    fn bucket_count_rounds_to_power_of_two() {
        let p = Partition::new(PartitionConfig::new(100, None));
        assert_eq!(p.bucket_count(), 128);
    }

    #[test]
    fn many_keys_spread_over_buckets() {
        let mut p = Partition::new(PartitionConfig::new(256, None));
        for key in 0..5_000u64 {
            p.insert_copy(key * 31 + 7, &[0; 8]).unwrap();
        }
        assert_eq!(p.len(), 5_000);
        assert_eq!(p.keys().len(), 5_000);
        p.check_invariants();
    }
}
