//! Key hashing and key → partition assignment.
//!
//! "CPHASH uses a simple hash function to assign each possible key to a
//! partition" (§3).  Keys are 60-bit integers (§3.1); the top four bits are
//! reserved so a key never collides with the protocol's message tags.

/// Largest legal key: keys are 60-bit integers in the paper's design.
pub const MAX_KEY: u64 = (1 << 60) - 1;

/// A fast 64-bit mixing function (splitmix64 finalizer).  Used both to
/// spread keys over buckets and to assign keys to partitions; it is "simple"
/// in the paper's sense — stateless and a handful of arithmetic ops — while
/// still spreading adjacent keys to unrelated buckets.
#[inline]
pub fn hash64(key: u64) -> u64 {
    let mut x = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The partition responsible for `key`, out of `partitions` total.
///
/// Both tables use this same assignment so a given key lands in the same
/// partition under CPHash and LockHash, which keeps comparisons fair.
#[inline]
pub fn partition_for_key(key: u64, partitions: usize) -> usize {
    debug_assert!(partitions > 0);
    (hash64(key) % partitions as u64) as usize
}

/// The migration chunk `key` belongs to, out of `chunks` chunks (a power of
/// two).
///
/// Online repartitioning moves the key space between server threads one
/// chunk at a time: a chunk is a 1/`chunks` slice of the hash space, chosen
/// by the *top* hash bits so it is decorrelated both from partition
/// selection (modulo over the full hash) and bucket selection (bits 17+).
/// Clients and servers agree on this pure function, so a single shared
/// watermark ("chunks below `w` are migrated") describes migration progress
/// exactly.
///
/// At most [`MAX_MIGRATION_CHUNKS`] chunks are supported — the chunk index
/// is drawn from hash bits 48..64, so larger counts would leave the upper
/// chunk indices permanently empty.
#[inline]
pub fn migration_chunk(key: u64, chunks: usize) -> usize {
    debug_assert!(chunks.is_power_of_two() && chunks <= MAX_MIGRATION_CHUNKS);
    ((hash64(key) >> 48) & (chunks as u64 - 1)) as usize
}

/// Largest supported migration-chunk count (the chunk index is 16 hash
/// bits).
pub const MAX_MIGRATION_CHUNKS: usize = 1 << 16;

/// The bucket within a partition for `key`, out of `buckets` buckets
/// (a power of two).
#[inline]
pub fn bucket_for_key(key: u64, buckets: usize) -> usize {
    bucket_from_hash(hash64(key), buckets)
}

/// [`bucket_for_key`] with the hash already computed — lets two-phase
/// callers derive bucket and tag from one `hash64` evaluation.
#[inline]
pub fn bucket_from_hash(hash: u64, buckets: usize) -> usize {
    debug_assert!(buckets.is_power_of_two());
    // Use the upper bits so that partition selection (modulo) and bucket
    // selection stay decorrelated.
    ((hash >> 17) & (buckets as u64 - 1)) as usize
}

/// The 8-bit key tag stored in a bucket's inline cache line.
///
/// Drawn from the hash's *low* byte so it is decorrelated from bucket
/// selection (bits 17+), partition selection (modulo over the full hash)
/// and migration chunks (bits 48..64): two keys in the same bucket still
/// collide on the tag only with probability ~2⁻⁸.
#[inline]
pub fn key_tag(key: u64) -> u8 {
    key_tag_from_hash(hash64(key))
}

/// [`key_tag`] with the hash already computed.
#[inline]
pub fn key_tag_from_hash(hash: u64) -> u8 {
    hash as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hash_is_deterministic_and_spreads() {
        assert_eq!(hash64(42), hash64(42));
        let distinct: HashSet<u64> = (0..10_000u64).map(hash64).collect();
        assert_eq!(
            distinct.len(),
            10_000,
            "no collisions on small sequential keys"
        );
    }

    #[test]
    fn partition_assignment_is_stable_and_in_range() {
        for key in 0..1000u64 {
            let p = partition_for_key(key, 80);
            assert!(p < 80);
            assert_eq!(p, partition_for_key(key, 80));
        }
    }

    #[test]
    fn partition_assignment_is_roughly_balanced() {
        let partitions = 16;
        let mut counts = vec![0usize; partitions];
        let n = 100_000u64;
        for key in 0..n {
            counts[partition_for_key(key, partitions)] += 1;
        }
        let expected = n as usize / partitions;
        for (p, &c) in counts.iter().enumerate() {
            assert!(
                c > expected * 8 / 10 && c < expected * 12 / 10,
                "partition {p} got {c} of ~{expected}"
            );
        }
    }

    #[test]
    fn bucket_selection_respects_power_of_two() {
        for key in 0..1000u64 {
            assert!(bucket_for_key(key, 1024) < 1024);
        }
    }

    #[test]
    fn bucket_and_partition_are_decorrelated() {
        // Keys that share a partition should still spread over buckets.
        let mut buckets = HashSet::new();
        for key in 0..100_000u64 {
            if partition_for_key(key, 80) == 0 {
                buckets.insert(bucket_for_key(key, 256));
            }
        }
        assert!(
            buckets.len() > 200,
            "only {} distinct buckets",
            buckets.len()
        );
    }

    #[test]
    fn key_tags_are_stable_and_decorrelated_from_buckets() {
        assert_eq!(key_tag(42), key_tag(42));
        assert_eq!(key_tag(7), key_tag_from_hash(hash64(7)));
        // Keys sharing one bucket must still spread over (almost) all 256
        // tag values, or the tag would reject nothing.
        let mut tags = HashSet::new();
        for key in 0..200_000u64 {
            if bucket_for_key(key, 64) == 0 {
                tags.insert(key_tag(key));
            }
        }
        assert!(tags.len() > 240, "only {} distinct tags", tags.len());
    }

    #[test]
    fn max_key_is_60_bits() {
        assert_eq!(MAX_KEY, 0x0FFF_FFFF_FFFF_FFFF);
    }

    #[test]
    fn migration_chunks_are_stable_and_balanced() {
        let chunks = 64;
        let mut counts = vec![0usize; chunks];
        for key in 0..100_000u64 {
            let c = migration_chunk(key, chunks);
            assert!(c < chunks);
            assert_eq!(c, migration_chunk(key, chunks));
            counts[c] += 1;
        }
        let expected = 100_000 / chunks;
        for (c, &n) in counts.iter().enumerate() {
            assert!(
                n > expected * 7 / 10 && n < expected * 13 / 10,
                "chunk {c} got {n} of ~{expected}"
            );
        }
    }

    #[test]
    fn migration_chunk_decorrelated_from_partition() {
        // Keys of one partition must spread over (almost) all chunks.
        let mut seen = HashSet::new();
        for key in 0..100_000u64 {
            if partition_for_key(key, 4) == 0 {
                seen.insert(migration_chunk(key, 64));
            }
        }
        assert_eq!(
            seen.len(),
            64,
            "partition 0 keys hit only {} chunks",
            seen.len()
        );
    }
}
