//! The partition data structure shared by CPHash and LockHash.
//!
//! §5 of the paper: "both CPHASH and LOCKHASH use the same code for
//! implementing a single hash table partition; the only difference is that
//! LOCKHASH acquires a lock to perform an operation on a partition, and
//! CPHASH uses message-passing to send the request to the appropriate
//! server thread."  This crate is that shared code.
//!
//! A [`Partition`] is a single-threaded, fixed-capacity hash table with
//! (per §3.1):
//!
//! * a bucket array of 64-byte-aligned *tagged bucket lines* — each bucket
//!   packs its first [`partition::INLINE_SLOTS`] entries as 8-bit key tags
//!   plus `u32` element refs inline in the bucket's own cache line,
//!   overflowing to an intrusive doubly-linked chain only past that (the
//!   paper's bare chain-head layout remains selectable via
//!   [`BucketLayout::Chain`] / `CPHASH_BUCKET_LAYOUT=chain`),
//! * an LRU list threaded through the same element headers (or no list at
//!   all under the random-eviction policy of §6.3),
//! * an element header holding the key, value size, reference count and the
//!   four list pointers,
//! * values allocated out of a per-partition [`cphash_alloc::SlabAllocator`]
//!   whose byte budget is the partition's share of the table capacity,
//! * reference counting with deferred frees, so a value returned to a
//!   client is never recycled while the client may still be reading it.
//!
//! The structure is deliberately *not* thread-safe: CPHash gives each
//! partition to exactly one server thread; LockHash wraps each partition in
//! a spinlock.  That asymmetry — same data structure, different concurrency
//! discipline — is the whole experiment.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod element;
pub mod hash;
pub mod partition;
pub mod policy;
pub mod stats;

pub use element::{ElementId, ElementState};
pub use hash::{
    hash64, key_tag, migration_chunk, partition_for_key, MAX_KEY, MAX_MIGRATION_CHUNKS,
};
pub use partition::{
    BucketLayout, BucketRef, ExportOutcome, InsertError, InsertReservation, LookupHit, Partition,
    PartitionConfig, INLINE_SLOTS,
};
pub use policy::EvictionPolicy;
pub use stats::PartitionStats;
