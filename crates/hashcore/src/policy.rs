//! Eviction policies.

/// How a partition chooses a victim when an insert does not fit.
///
/// The paper evaluates both: LRU is the default (§3.1, Figure 5) and random
/// eviction is the §6.3 / Figure 8 variant, which "avoids maintaining any
/// LRU data structures" — under it the partition skips all LRU bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvictionPolicy {
    /// Evict the least recently used element; every lookup/insert moves the
    /// touched element to the head of the LRU list.
    #[default]
    Lru,
    /// Evict a (pseudo-)randomly chosen element; no LRU list is maintained.
    Random,
}

impl EvictionPolicy {
    /// Whether the policy requires maintaining the LRU list.
    pub fn maintains_lru(self) -> bool {
        matches!(self, EvictionPolicy::Lru)
    }

    /// Short name used in benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Random => "random",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_properties() {
        assert!(EvictionPolicy::Lru.maintains_lru());
        assert!(!EvictionPolicy::Random.maintains_lru());
        assert_eq!(EvictionPolicy::Lru.name(), "lru");
        assert_eq!(EvictionPolicy::Random.name(), "random");
        assert_eq!(EvictionPolicy::default(), EvictionPolicy::Lru);
    }
}
