//! Per-partition operation statistics.

/// Counters describing everything a partition has done since creation (or
/// the last [`PartitionStats::reset`]).  Single-threaded like the partition
/// itself, so plain integers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionStats {
    /// Lookup operations served.
    pub lookups: u64,
    /// Lookups that found a READY element.
    pub hits: u64,
    /// Insert operations served (reservations handed out).
    pub inserts: u64,
    /// Inserts that replaced an existing element with the same key.
    pub replacements: u64,
    /// Elements evicted to make room.
    pub evictions: u64,
    /// Explicit deletes.
    pub deletes: u64,
    /// Elements whose memory release was deferred because clients still held
    /// references when they were unlinked.
    pub deferred_frees: u64,
    /// Inserts refused because the value cannot fit even after evicting
    /// everything evictable.
    pub failed_inserts: u64,
    /// Elements exported to another partition by live migration.
    pub exported: u64,
    /// Elements absorbed from another partition by live migration.
    pub absorbed: u64,
    /// Slots / chunk-list nodes visited while selecting export candidates.
    /// Per-chunk exports keep this proportional to the chunk's population;
    /// full-table exports add the whole slot count per call.
    pub export_elements_visited: u64,
    /// Export calls that scanned every slot (the legacy whole-table path).
    /// Stays zero when migration uses the per-chunk index.
    pub full_export_scans: u64,
    /// Probes resolved by a bucket line's *inline* tagged slots — the
    /// common case one bucket-line prefetch fully covers.  Zero under the
    /// chained layout.
    pub inline_hits: u64,
    /// Elements visited on bucket *overflow chains* (a bucket held more
    /// keys than its inline slots).  Zero under the chained layout.
    pub overflow_probes: u64,
    /// Inline tag matches whose full key comparison then failed — the
    /// ~2⁻⁸-probability cost of the 8-bit tag filter.  Zero under the
    /// chained layout.
    pub tag_false_positives: u64,
}

impl PartitionStats {
    /// Hit rate over all lookups, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Merge another partition's counters into this one (used to aggregate
    /// across all partitions of a table).
    pub fn merge(&mut self, other: &PartitionStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.inserts += other.inserts;
        self.replacements += other.replacements;
        self.evictions += other.evictions;
        self.deletes += other.deletes;
        self.deferred_frees += other.deferred_frees;
        self.failed_inserts += other.failed_inserts;
        self.exported += other.exported;
        self.absorbed += other.absorbed;
        self.export_elements_visited += other.export_elements_visited;
        self.full_export_scans += other.full_export_scans;
        self.inline_hits += other.inline_hits;
        self.overflow_probes += other.overflow_probes;
        self.tag_false_positives += other.tag_false_positives;
    }

    /// Zero every counter.
    pub fn reset(&mut self) {
        *self = PartitionStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_merge() {
        let mut a = PartitionStats {
            lookups: 10,
            hits: 7,
            ..Default::default()
        };
        assert!((a.hit_rate() - 0.7).abs() < 1e-12);
        let b = PartitionStats {
            lookups: 10,
            hits: 3,
            evictions: 2,
            inline_hits: 4,
            overflow_probes: 5,
            tag_false_positives: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.lookups, 20);
        assert_eq!(a.hits, 10);
        assert_eq!(a.evictions, 2);
        assert_eq!(a.inline_hits, 4);
        assert_eq!(a.overflow_probes, 5);
        assert_eq!(a.tag_false_positives, 1);
        a.reset();
        assert_eq!(a, PartitionStats::default());
        assert_eq!(a.hit_rate(), 0.0);
    }
}
