//! Element headers and their intrusive list links.

use cphash_alloc::ValueHandle;

/// Index of an element slot within its partition.
///
/// Element ids are partition-local; the CPHash protocol always pairs an id
/// with the partition (server) it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElementId(pub u32);

/// Sentinel "null" link used by the intrusive lists.
pub(crate) const NIL: u32 = u32::MAX;

/// Publication state of an element's value (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElementState {
    /// Space has been allocated but the client has not yet copied the value;
    /// lookups must not return it.
    NotReady,
    /// The value is fully written and visible to lookups.
    Ready,
}

/// One element header: "the key, the reference count, the size of the value
/// (in bytes), and doubly-linked-list pointers for the bucket and for the
/// LRU list" (§3.1), plus the allocator handle for the value bytes and the
/// intrusive links of the per-chunk migration index (so exporting one
/// migration chunk walks only that chunk's elements, never the whole table).
#[derive(Debug)]
pub(crate) struct Element {
    pub key: u64,
    pub value: ValueHandle,
    pub refcount: u32,
    pub state: ElementState,
    /// Still linked into the bucket/LRU lists?  An element that has been
    /// evicted or deleted while clients still hold references is unlinked
    /// but not yet freed.
    pub linked: bool,
    pub bucket: u32,
    /// Bucket-chain links.  Under the inline bucket layout an element that
    /// resides in one of its bucket line's tagged slots is *not* on the
    /// chain: both links stay NIL until the bucket overflows past its
    /// inline capacity (see `partition::BucketLine`).
    pub bucket_next: u32,
    pub bucket_prev: u32,
    pub lru_next: u32,
    pub lru_prev: u32,
    /// Migration chunk this key hashes to (cached so unlinking needs no
    /// re-hash).
    pub chunk: u32,
    pub chunk_next: u32,
    pub chunk_prev: u32,
}

impl Element {
    pub(crate) fn new(key: u64, value: ValueHandle, bucket: u32, chunk: u32) -> Self {
        Element {
            key,
            value,
            refcount: 0,
            state: ElementState::NotReady,
            linked: true,
            bucket,
            bucket_next: NIL,
            bucket_prev: NIL,
            lru_next: NIL,
            lru_prev: NIL,
            chunk,
            chunk_next: NIL,
            chunk_prev: NIL,
        }
    }
}

/// A slot in the partition's element arena: either occupied or a free-list
/// link to the next free slot.
#[derive(Debug)]
pub(crate) enum Slot {
    Occupied(Element),
    Free { next_free: u32 },
}

impl Slot {
    pub(crate) fn element(&self) -> &Element {
        match self {
            Slot::Occupied(e) => e,
            Slot::Free { .. } => panic!("accessed a free element slot"),
        }
    }

    pub(crate) fn element_mut(&mut self) -> &mut Element {
        match self {
            Slot::Occupied(e) => e,
            Slot::Free { .. } => panic!("accessed a free element slot"),
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_occupied(&self) -> bool {
        matches!(self, Slot::Occupied(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cphash_alloc::SlabAllocator;

    #[test]
    fn new_elements_start_not_ready_and_linked() {
        let mut a = SlabAllocator::unbounded();
        let v = a.allocate(8).unwrap();
        let e = Element::new(7, v, 3, 5);
        assert_eq!(e.key, 7);
        assert_eq!(e.bucket, 3);
        assert_eq!(e.chunk, 5);
        assert_eq!(e.chunk_next, NIL);
        assert_eq!(e.state, ElementState::NotReady);
        assert!(e.linked);
        assert_eq!(e.refcount, 0);
        assert_eq!(e.bucket_next, NIL);
        a.free(v);
    }

    #[test]
    fn slot_accessors() {
        let mut a = SlabAllocator::unbounded();
        let v = a.allocate(8).unwrap();
        let mut slot = Slot::Occupied(Element::new(1, v, 0, 0));
        assert!(slot.is_occupied());
        assert_eq!(slot.element().key, 1);
        slot.element_mut().refcount += 1;
        assert_eq!(slot.element().refcount, 1);
        let free = Slot::Free { next_free: NIL };
        assert!(!free.is_occupied());
        a.free(v);
    }

    #[test]
    #[should_panic(expected = "free element slot")]
    fn accessing_free_slot_panics() {
        let slot = Slot::Free { next_free: 4 };
        let _ = slot.element();
    }
}
