//! TCP load generator for CPSERVER / LOCKSERVER.
//!
//! The paper drives its key/value servers from a second machine over
//! 10 GbE (§7).  Here the load generator runs over loopback (or any
//! address): a set of generator threads, each owning several connections,
//! sends pipelined batches of LOOKUP/INSERT requests and reads back the
//! LOOKUP responses.  Batching over the socket mirrors how the paper's TCP
//! clients "gather as many requests as possible … in a single batch".

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};

use bytes::BytesMut;
use cphash_kvproto::{encode_insert, encode_lookup, ResponseDecoder};
use cphash_perfmon::Stopwatch;

use crate::ops::{Op, OpStream};
use crate::workload::WorkloadSpec;

/// Options for a TCP load-generation run.
#[derive(Debug, Clone)]
pub struct TcpLoadOptions {
    /// Server address.
    pub addr: SocketAddr,
    /// Generator threads.
    pub threads: usize,
    /// Connections per generator thread.
    pub connections_per_thread: usize,
    /// Requests sent per batch before reading responses back.
    pub pipeline: usize,
}

impl Default for TcpLoadOptions {
    fn default() -> Self {
        TcpLoadOptions {
            addr: "127.0.0.1:0".parse().expect("valid literal address"),
            threads: 2,
            connections_per_thread: 2,
            pipeline: 64,
        }
    }
}

/// Result of a TCP load run.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpLoadResult {
    /// Requests sent (lookups + inserts).
    pub operations: u64,
    /// Lookups that returned a value.
    pub lookup_hits: u64,
    /// Lookups sent.
    pub lookups: u64,
    /// Wall-clock seconds for the timed phase.
    pub elapsed_secs: f64,
}

impl TcpLoadResult {
    /// Requests per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.operations as f64 / self.elapsed_secs
        }
    }

    /// Requests per second per unit (per core for Figure 14).
    pub fn throughput_per(&self, units: usize) -> f64 {
        if units == 0 {
            0.0
        } else {
            self.throughput() / units as f64
        }
    }
}

/// Drive `spec.operations` requests at the server and measure throughput.
pub fn run_tcp_load(spec: &WorkloadSpec, opts: &TcpLoadOptions) -> std::io::Result<TcpLoadResult> {
    spec.validate();
    assert!(opts.threads > 0 && opts.connections_per_thread > 0 && opts.pipeline > 0);

    let barrier = Arc::new(Barrier::new(opts.threads + 1));
    let mut workers = Vec::with_capacity(opts.threads);
    for index in 0..opts.threads {
        let barrier = Arc::clone(&barrier);
        let spec = *spec;
        let opts = opts.clone();
        let ops = spec.operations / opts.threads as u64
            + u64::from((index as u64) < spec.operations % opts.threads as u64);
        workers.push(std::thread::spawn(
            move || -> std::io::Result<(u64, u64, u64)> {
                let mut connections: Vec<(TcpStream, ResponseDecoder)> = (0..opts
                    .connections_per_thread)
                    .map(|_| -> std::io::Result<_> {
                        let stream = TcpStream::connect(opts.addr)?;
                        stream.set_nodelay(true)?;
                        Ok((stream, ResponseDecoder::new()))
                    })
                    .collect::<Result<_, _>>()?;
                let mut stream_ops = OpStream::for_client(&spec, index, ops);
                let mut wire = BytesMut::with_capacity(opts.pipeline * 32);
                let mut read_buf = vec![0u8; 64 * 1024];
                let mut sent = 0u64;
                let mut lookups = 0u64;
                let mut hits = 0u64;
                barrier.wait();

                #[allow(clippy::needless_range_loop)] // conn_idx is the slab slot id
                'outer: loop {
                    for conn_idx in 0..connections.len() {
                        // Build one pipelined batch for this connection.
                        wire.clear();
                        let mut batch_lookups = 0usize;
                        let mut batch_ops = 0usize;
                        while batch_ops < opts.pipeline {
                            match stream_ops.next() {
                                Some(Op::Lookup(key)) => {
                                    encode_lookup(&mut wire, key);
                                    batch_lookups += 1;
                                }
                                Some(Op::Insert(key)) => {
                                    encode_insert(&mut wire, key, &key.to_le_bytes());
                                }
                                None => break,
                            }
                            batch_ops += 1;
                        }
                        if batch_ops == 0 {
                            break 'outer;
                        }
                        let (socket, decoder) = &mut connections[conn_idx];
                        socket.write_all(&wire)?;
                        sent += batch_ops as u64;
                        lookups += batch_lookups as u64;
                        // Read exactly the responses this batch owes us
                        // (inserts are fire-and-forget, §4.1).
                        let mut received = 0usize;
                        while received < batch_lookups {
                            while let Some(resp) = decoder.next_response().map_err(|e| {
                                std::io::Error::new(std::io::ErrorKind::InvalidData, e)
                            })? {
                                received += 1;
                                if resp.value.is_some() {
                                    hits += 1;
                                }
                                if received == batch_lookups {
                                    break;
                                }
                            }
                            if received < batch_lookups {
                                let n = socket.read(&mut read_buf)?;
                                if n == 0 {
                                    return Err(std::io::Error::new(
                                        std::io::ErrorKind::UnexpectedEof,
                                        "server closed the connection mid-batch",
                                    ));
                                }
                                decoder.feed(&read_buf[..n]);
                            }
                        }
                    }
                }
                Ok((sent, lookups, hits))
            },
        ));
    }

    barrier.wait();
    let watch = Stopwatch::start();
    let mut result = TcpLoadResult::default();
    for worker in workers {
        let (sent, lookups, hits) = worker.join().expect("load thread panicked")?;
        result.operations += sent;
        result.lookups += lookups;
        result.lookup_hits += hits;
    }
    result.elapsed_secs = watch.elapsed_secs();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cphash_kvproto::{RequestDecoder, RequestKind};
    use std::net::TcpListener;

    /// A minimal in-test echo server speaking the kv protocol: every LOOKUP
    /// for an even key hits (returns the key bytes), odd keys miss, and
    /// INSERTs are swallowed — enough to exercise the load generator's
    /// pipelining and accounting without pulling in the real servers
    /// (which live in `cphash-kvserver` and are tested there).
    fn spawn_stub_server() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                std::thread::spawn(move || {
                    let mut decoder = RequestDecoder::new();
                    let mut buf = vec![0u8; 16 * 1024];
                    let mut out = BytesMut::new();
                    let mut requests = Vec::new();
                    loop {
                        let n = match stream.read(&mut buf) {
                            Ok(0) | Err(_) => return,
                            Ok(n) => n,
                        };
                        decoder.feed(&buf[..n]);
                        requests.clear();
                        if decoder.drain(&mut requests).is_err() {
                            return;
                        }
                        out.clear();
                        for req in &requests {
                            if req.kind == RequestKind::Lookup {
                                if req.key % 2 == 0 {
                                    cphash_kvproto::encode_response(
                                        &mut out,
                                        Some(&req.key.to_le_bytes()),
                                    );
                                } else {
                                    cphash_kvproto::encode_response(&mut out, None);
                                }
                            }
                        }
                        if !out.is_empty() && stream.write_all(&out).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn load_generator_accounts_for_every_request() {
        let addr = spawn_stub_server();
        let spec = WorkloadSpec {
            working_set_bytes: 8 * 1024,
            capacity_bytes: 8 * 1024,
            operations: 4_000,
            insert_ratio: 0.3,
            prefill: false,
            ..Default::default()
        };
        let opts = TcpLoadOptions {
            addr,
            threads: 2,
            connections_per_thread: 2,
            pipeline: 32,
        };
        let result = run_tcp_load(&spec, &opts).expect("load run succeeds");
        assert_eq!(result.operations, spec.operations);
        assert!(result.lookups > 0);
        assert!(result.lookup_hits > 0);
        assert!(result.lookup_hits <= result.lookups);
        assert!(result.throughput() > 0.0);
        assert!(result.throughput_per(2) < result.throughput());
    }
}
