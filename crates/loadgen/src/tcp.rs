//! TCP load generator for CPSERVER / LOCKSERVER.
//!
//! The paper drives its key/value servers from a second machine over
//! 10 GbE (§7).  Here the load generator runs over loopback (or any
//! address): a set of generator threads, each owning several connections,
//! sends pipelined batches of LOOKUP/INSERT requests and reads back the
//! responses.  Batching over the socket mirrors how the paper's TCP
//! clients "gather as many requests as possible … in a single batch".
//!
//! Each connection is a [`cphash::RemoteClient`] driven through the
//! [`cphash::KvClient`] trait — the same client the examples and admin
//! tools use — so the generator exercises whatever protocol version the
//! server negotiates (v2 with typed replies, or the legacy v1 framing via
//! `RemoteClient`'s transparent fallback) without owning any wire code of
//! its own.

use std::io::ErrorKind;
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};

use cphash::{Completion, CompletionKind, KeyRef, KvClient, KvOp, RemoteClient};
use cphash_perfmon::Stopwatch;

use crate::ops::{Op, OpStream};
use crate::workload::WorkloadSpec;

/// Options for a TCP load-generation run.
#[derive(Debug, Clone)]
pub struct TcpLoadOptions {
    /// Server address.
    pub addr: SocketAddr,
    /// Generator threads.
    pub threads: usize,
    /// Connections per generator thread.
    pub connections_per_thread: usize,
    /// Requests sent per batch before reading responses back.
    pub pipeline: usize,
}

impl Default for TcpLoadOptions {
    fn default() -> Self {
        TcpLoadOptions {
            addr: "127.0.0.1:0".parse().expect("valid literal address"),
            threads: 2,
            connections_per_thread: 2,
            pipeline: 64,
        }
    }
}

/// Result of a TCP load run.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpLoadResult {
    /// Requests sent (lookups + inserts).
    pub operations: u64,
    /// Lookups that returned a value.
    pub lookup_hits: u64,
    /// Lookups sent.
    pub lookups: u64,
    /// Wall-clock seconds for the timed phase.
    pub elapsed_secs: f64,
}

impl TcpLoadResult {
    /// Requests per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.operations as f64 / self.elapsed_secs
        }
    }

    /// Requests per second per unit (per core for Figure 14).
    pub fn throughput_per(&self, units: usize) -> f64 {
        if units == 0 {
            0.0
        } else {
            self.throughput() / units as f64
        }
    }
}

/// Drive `spec.operations` requests at the server and measure throughput.
pub fn run_tcp_load(spec: &WorkloadSpec, opts: &TcpLoadOptions) -> std::io::Result<TcpLoadResult> {
    spec.validate();
    assert!(opts.threads > 0 && opts.connections_per_thread > 0 && opts.pipeline > 0);

    let barrier = Arc::new(Barrier::new(opts.threads + 1));
    let mut workers = Vec::with_capacity(opts.threads);
    for index in 0..opts.threads {
        let barrier = Arc::clone(&barrier);
        let spec = *spec;
        let opts = opts.clone();
        let ops = spec.operations / opts.threads as u64
            + u64::from((index as u64) < spec.operations % opts.threads as u64);
        workers.push(std::thread::spawn(
            move || -> std::io::Result<(u64, u64, u64)> {
                let mut connections: Vec<RemoteClient> = (0..opts.connections_per_thread)
                    .map(|_| RemoteClient::connect(opts.addr))
                    .collect::<Result<_, _>>()?;
                let mut stream_ops = OpStream::for_client(&spec, index, ops);
                let mut completions: Vec<Completion> = Vec::with_capacity(opts.pipeline);
                let mut sent = 0u64;
                let mut lookups = 0u64;
                let mut hits = 0u64;
                barrier.wait();

                'outer: loop {
                    for client in &mut connections {
                        // Submit one pipelined batch on this connection.
                        let mut batch_ops = 0usize;
                        while batch_ops < opts.pipeline {
                            match stream_ops.next() {
                                Some(Op::Lookup(key)) => {
                                    client.submit(KvOp::Get(KeyRef::Hash(key)));
                                    lookups += 1;
                                }
                                Some(Op::Insert(key)) => {
                                    client.submit(KvOp::Insert(
                                        KeyRef::Hash(key),
                                        &key.to_le_bytes(),
                                    ));
                                }
                                None => break,
                            }
                            batch_ops += 1;
                        }
                        if batch_ops == 0 {
                            break 'outer;
                        }
                        sent += batch_ops as u64;
                        // Drain the batch before pipelining the next one, the
                        // way the paper's clients alternate send and receive
                        // phases.  (On a v1 connection inserts complete
                        // client-side and only lookups wait on the wire.)
                        while client.pending_ops() > 0 {
                            completions.clear();
                            if client.poll_completions(&mut completions) == 0 {
                                if !client.is_alive() {
                                    return Err(std::io::Error::new(
                                        ErrorKind::UnexpectedEof,
                                        "server connection died mid-batch",
                                    ));
                                }
                                std::thread::yield_now();
                            }
                            for completion in &completions {
                                if matches!(completion.kind, CompletionKind::LookupHit(_)) {
                                    hits += 1;
                                }
                            }
                        }
                    }
                }
                Ok((sent, lookups, hits))
            },
        ));
    }

    barrier.wait();
    let watch = Stopwatch::start();
    let mut result = TcpLoadResult::default();
    for worker in workers {
        let (sent, lookups, hits) = worker.join().expect("load thread panicked")?;
        result.operations += sent;
        result.lookups += lookups;
        result.lookup_hits += hits;
    }
    result.elapsed_secs = watch.elapsed_secs();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use cphash_kvproto::{RequestDecoder, RequestKind};
    use std::io::{Read, Write};
    use std::net::TcpListener;

    /// A minimal in-test echo server speaking the v1 kv protocol: every
    /// LOOKUP for an even key hits (returns the key bytes), odd keys miss,
    /// and INSERTs are swallowed — enough to exercise the load generator's
    /// pipelining and accounting without pulling in the real servers
    /// (which live in `cphash-kvserver` and are tested there).  Being
    /// v1-only it also proves the generator rides `RemoteClient`'s
    /// transparent v1 fallback: the HELLO connection is rejected as a bad
    /// opcode and the client reconnects speaking v1.
    fn spawn_stub_server() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                // The real servers disable Nagle (kvserver sets nodelay on
                // accept); without it the per-op client writes and delayed
                // ACKs handshake into 40 ms stalls per response burst.
                let _ = stream.set_nodelay(true);
                std::thread::spawn(move || {
                    let mut decoder = RequestDecoder::new();
                    let mut buf = vec![0u8; 16 * 1024];
                    let mut out = BytesMut::new();
                    let mut requests = Vec::new();
                    loop {
                        let n = match stream.read(&mut buf) {
                            Ok(0) | Err(_) => return,
                            Ok(n) => n,
                        };
                        decoder.feed(&buf[..n]);
                        requests.clear();
                        if decoder.drain(&mut requests).is_err() {
                            return;
                        }
                        out.clear();
                        for req in &requests {
                            if req.kind == RequestKind::Lookup {
                                if req.key % 2 == 0 {
                                    cphash_kvproto::encode_response(
                                        &mut out,
                                        Some(&req.key.to_le_bytes()),
                                    );
                                } else {
                                    cphash_kvproto::encode_response(&mut out, None);
                                }
                            }
                        }
                        if !out.is_empty() && stream.write_all(&out).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn load_generator_accounts_for_every_request() {
        let addr = spawn_stub_server();
        let spec = WorkloadSpec {
            working_set_bytes: 8 * 1024,
            capacity_bytes: 8 * 1024,
            operations: 4_000,
            insert_ratio: 0.3,
            prefill: false,
            ..Default::default()
        };
        let opts = TcpLoadOptions {
            addr,
            threads: 2,
            connections_per_thread: 2,
            pipeline: 32,
        };
        let result = run_tcp_load(&spec, &opts).expect("load run succeeds");
        assert_eq!(result.operations, spec.operations);
        assert!(result.lookups > 0);
        assert!(result.lookup_hits > 0);
        assert!(result.lookup_hits <= result.lookups);
        assert!(result.throughput() > 0.0);
        assert!(result.throughput_per(2) < result.throughput());
    }

    #[test]
    fn load_generator_negotiates_v1_against_legacy_servers() {
        let addr = spawn_stub_server();
        let mut client = RemoteClient::connect(addr).expect("connect");
        assert_eq!(client.protocol_version(), 1);
        client.submit(KvOp::Get(KeyRef::Hash(4)));
        let mut out = Vec::new();
        while client.poll_completions(&mut out) == 0 {
            assert!(client.is_alive(), "stub dropped the v1 connection");
            std::thread::yield_now();
        }
        assert!(matches!(out[0].kind, CompletionKind::LookupHit(_)));
    }
}
