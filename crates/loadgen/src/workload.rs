//! The §6 benchmark parameter set.

use serde::{Deserialize, Serialize};

use crate::ops::KeyDistribution;

/// Parameters of one benchmark run — the exact knobs §6 enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// "Working set size of queries issued by clients, in bytes (i.e.,
    /// amount of memory required to store all values inserted by clients)."
    pub working_set_bytes: usize,
    /// Size of each value in bytes ("the value is the same as the key
    /// (8 bytes)" in the microbenchmark).
    pub value_bytes: usize,
    /// "Maximum hash table size in bytes (meaningful values range from 0×
    /// to 1× the working set size)."
    pub capacity_bytes: usize,
    /// "Ratio of INSERT queries" (the rest are LOOKUPs).
    pub insert_ratio: f64,
    /// Total operations to issue across all client threads.
    pub operations: u64,
    /// Outstanding-request window per client ("Each client maintains a
    /// pipeline of 1,000 outstanding requests across all servers", §6.1).
    pub batch: usize,
    /// Key popularity distribution (uniform in the paper's microbenchmark).
    pub distribution: KeyDistribution,
    /// Whether to pre-populate the table with the working set before the
    /// timed run (the paper's 10⁹-query runs reach steady state on their
    /// own; short runs need the head start for realistic hit rates).
    pub prefill: bool,
    /// Seed for deterministic key streams.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            working_set_bytes: 1 << 20,
            value_bytes: 8,
            capacity_bytes: 1 << 20,
            insert_ratio: 0.3,
            operations: 1_000_000,
            batch: 1_000,
            distribution: KeyDistribution::Uniform,
            prefill: true,
            seed: 0xFEED_F00D,
        }
    }
}

impl WorkloadSpec {
    /// The Figure 5/8 sweep point at a given working-set size: capacity
    /// equal to the working set, 30 % inserts, LRU.
    pub fn working_set_point(working_set_bytes: usize, operations: u64) -> Self {
        WorkloadSpec {
            working_set_bytes,
            capacity_bytes: working_set_bytes,
            operations,
            ..Default::default()
        }
    }

    /// The Figure 6/7 configuration: 1 MB working set and capacity.
    pub fn figure6(operations: u64) -> Self {
        Self::working_set_point(1 << 20, operations)
    }

    /// A Figure 9 sweep point: 128 MB working set (scaled by the caller),
    /// variable capacity.
    pub fn capacity_point(
        working_set_bytes: usize,
        capacity_bytes: usize,
        operations: u64,
    ) -> Self {
        WorkloadSpec {
            working_set_bytes,
            capacity_bytes,
            operations,
            ..Default::default()
        }
    }

    /// A Figure 10 sweep point: fixed working set and capacity, variable
    /// insert ratio.
    pub fn insert_ratio_point(
        working_set_bytes: usize,
        insert_ratio: f64,
        operations: u64,
    ) -> Self {
        WorkloadSpec {
            working_set_bytes,
            capacity_bytes: working_set_bytes,
            insert_ratio,
            operations,
            ..Default::default()
        }
    }

    /// Number of distinct keys in the working set.
    pub fn distinct_keys(&self) -> u64 {
        (self.working_set_bytes / self.value_bytes.max(1)).max(1) as u64
    }

    /// Capacity as a fraction of the working set (0.0 – 1.0+).
    pub fn capacity_fraction(&self) -> f64 {
        if self.working_set_bytes == 0 {
            0.0
        } else {
            self.capacity_bytes as f64 / self.working_set_bytes as f64
        }
    }

    /// Sanity-check the parameters.
    pub fn validate(&self) {
        assert!(self.value_bytes > 0, "values need at least one byte");
        assert!(
            self.working_set_bytes >= self.value_bytes,
            "working set smaller than one value"
        );
        assert!(
            (0.0..=1.0).contains(&self.insert_ratio),
            "insert ratio must be in [0, 1]"
        );
        assert!(self.operations > 0, "need at least one operation");
        assert!(self.batch > 0, "batch must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_papers_figure6_point() {
        let w = WorkloadSpec::default();
        assert_eq!(w.working_set_bytes, 1 << 20);
        assert_eq!(w.value_bytes, 8);
        assert!((w.insert_ratio - 0.3).abs() < 1e-12);
        assert_eq!(w.distinct_keys(), 131_072);
        assert!((w.capacity_fraction() - 1.0).abs() < 1e-12);
        w.validate();
    }

    #[test]
    fn presets_produce_consistent_specs() {
        let f5 = WorkloadSpec::working_set_point(1 << 22, 100);
        assert_eq!(f5.capacity_bytes, 1 << 22);
        let f9 = WorkloadSpec::capacity_point(1 << 22, 1 << 20, 100);
        assert!((f9.capacity_fraction() - 0.25).abs() < 1e-12);
        let f10 = WorkloadSpec::insert_ratio_point(1 << 20, 0.8, 100);
        assert!((f10.insert_ratio - 0.8).abs() < 1e-12);
        let f6 = WorkloadSpec::figure6(100);
        assert_eq!(f6.working_set_bytes, 1 << 20);
        for spec in [f5, f9, f10, f6] {
            spec.validate();
        }
    }

    #[test]
    #[should_panic(expected = "insert ratio")]
    fn bad_insert_ratio_is_rejected() {
        WorkloadSpec {
            insert_ratio: 1.5,
            ..Default::default()
        }
        .validate();
    }
}
