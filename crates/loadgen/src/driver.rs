//! Multi-threaded benchmark drivers for CPHash and LockHash.
//!
//! Both drivers run the *same* [`WorkloadSpec`] through the *same*
//! per-thread operation streams; the only difference is how operations reach
//! the partitions — pipelined messages to pinned server threads for CPHash,
//! lock-acquire-then-execute on the issuing thread for LockHash.  That keeps
//! every figure an apples-to-apples comparison, as in the paper.

use cphash_sync::atomic::plain::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use cphash::{CompletionKind, CpHash, CpHashConfig, ServerPipeline};
use cphash_affinity::{pin_to_hw_thread, HwThreadId};
use cphash_hashcore::{EvictionPolicy, PartitionStats};
use cphash_lockhash::{LockHash, LockHashConfig, LockKind};
use cphash_perfmon::{DataSeries, Stopwatch};

use crate::ops::{working_set_keys, Op, OpStream};
use crate::workload::WorkloadSpec;

/// Thread-placement and table-shape options for one run.
#[derive(Debug, Clone)]
pub struct DriverOptions {
    /// Client threads issuing operations.
    pub client_threads: usize,
    /// CPHash partitions / server threads, or LockHash partitions.
    pub partitions: usize,
    /// Eviction policy for the table under test.
    pub eviction: EvictionPolicy,
    /// Hardware threads to pin client threads to (empty = unpinned).
    pub client_pins: Vec<HwThreadId>,
    /// Hardware threads to pin CPHash server threads to (empty = unpinned).
    pub server_pins: Vec<HwThreadId>,
    /// Lock algorithm for LockHash.
    pub lock_kind: LockKind,
    /// Message-ring capacity for CPHash lanes.
    pub ring_capacity: usize,
    /// Server hot-loop pipeline for CPHash (scalar baseline, batched, or
    /// batched+prefetch — the `ablate_prefetch` ablation axis).
    pub pipeline: ServerPipeline,
    /// Pipeline depth for CPHash servers (operations staged per batch).
    pub server_batch_size: usize,
    /// Throughput-timeline sampling interval in milliseconds (0 disables
    /// the sampler; the result's [`RunResult::timeline`] stays empty).
    pub timeline_sample_ms: u64,
}

impl Default for DriverOptions {
    fn default() -> Self {
        DriverOptions {
            client_threads: 4,
            partitions: 4,
            eviction: EvictionPolicy::Lru,
            client_pins: Vec::new(),
            server_pins: Vec::new(),
            lock_kind: LockKind::Spin,
            ring_capacity: 4096,
            pipeline: ServerPipeline::default(),
            server_batch_size: cphash::DEFAULT_BATCH_SIZE,
            timeline_sample_ms: 100,
        }
    }
}

impl DriverOptions {
    /// Options with the given thread and partition counts.
    pub fn new(client_threads: usize, partitions: usize) -> Self {
        DriverOptions {
            client_threads,
            partitions,
            ..Default::default()
        }
    }
}

/// The result of one benchmark run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Which table produced it ("cphash" / "lockhash").
    pub label: String,
    /// Operations completed.
    pub operations: u64,
    /// Wall-clock seconds for the timed phase.
    pub elapsed_secs: f64,
    /// Lookups issued.
    pub lookups: u64,
    /// Lookups that hit.
    pub lookup_hits: u64,
    /// Inserts issued.
    pub inserts: u64,
    /// Aggregated partition statistics at the end of the run.
    pub table_stats: PartitionStats,
    /// Mean server utilization (CPHash only).
    pub mean_server_utilization: Option<f64>,
    /// Batch-pipeline counters merged across server threads (CPHash only;
    /// all zero under the scalar pipeline).
    pub batch: cphash::BatchStats,
    /// Lock contention ratio (LockHash only).
    pub lock_contention: Option<f64>,
    /// How many client threads were successfully pinned.
    pub pinned_client_threads: usize,
    /// Throughput over time: one point per sampling interval (x = seconds
    /// since the timed phase began, y = ops/sec over that interval).  Empty
    /// when [`DriverOptions::timeline_sample_ms`] is 0.
    pub timeline: DataSeries,
}

impl RunResult {
    /// Queries per second over the timed phase.
    pub fn throughput(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.operations as f64 / self.elapsed_secs
        }
    }

    /// Queries per second divided by a unit count (per hardware thread, per
    /// core, per socket — Figures 11 and 14).
    pub fn throughput_per(&self, units: usize) -> f64 {
        if units == 0 {
            0.0
        } else {
            self.throughput() / units as f64
        }
    }

    /// Observed lookup hit rate.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.lookup_hits as f64 / self.lookups as f64
        }
    }
}

/// Per-thread tallies returned by worker threads.
#[derive(Debug, Default, Clone, Copy)]
struct ThreadTally {
    operations: u64,
    lookups: u64,
    hits: u64,
    inserts: u64,
    pinned: bool,
}

/// Background throughput sampler: while the timed phase runs, workers bump
/// a shared cumulative-operations counter (amortised — once per completion
/// batch, not per op) and this thread turns it into an ops/sec-over-time
/// [`DataSeries`].  The sampler pushes a final catch-up point on `finish`,
/// so even runs shorter than one interval produce a non-empty timeline.
struct TimelineSampler {
    progress: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<DataSeries>>,
    label: String,
}

impl TimelineSampler {
    fn start(label: &str, interval_ms: u64) -> TimelineSampler {
        let progress = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = (interval_ms > 0).then(|| {
            let progress = Arc::clone(&progress);
            let stop = Arc::clone(&stop);
            let label = label.to_string();
            std::thread::spawn(move || {
                let started = Instant::now();
                let mut series = DataSeries::new(label);
                let mut last_ops = 0u64;
                let mut last_at = 0.0f64;
                loop {
                    let stopping = stop.load(Ordering::Acquire);
                    if !stopping {
                        std::thread::sleep(Duration::from_millis(interval_ms));
                    }
                    let now = started.elapsed().as_secs_f64();
                    let ops = progress.load(Ordering::Relaxed); // relaxed: progress counter read by the live reporter
                    let dt = now - last_at;
                    if ops > last_ops && dt > 0.0 {
                        series.push(now, (ops - last_ops) as f64 / dt);
                    }
                    last_ops = ops;
                    last_at = now;
                    if stopping {
                        return series;
                    }
                }
            })
        });
        TimelineSampler {
            progress,
            stop,
            handle,
            label: label.to_string(),
        }
    }

    /// The shared counter worker threads advance.
    fn progress(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.progress)
    }

    fn finish(mut self) -> DataSeries {
        self.stop.store(true, Ordering::Release);
        match self.handle.take() {
            Some(handle) => handle.join().expect("timeline sampler panicked"),
            None => DataSeries::new(self.label),
        }
    }
}

fn ops_per_client(spec: &WorkloadSpec, clients: usize, index: usize) -> u64 {
    let base = spec.operations / clients as u64;
    let extra = spec.operations % clients as u64;
    base + if (index as u64) < extra { 1 } else { 0 }
}

/// Run the workload against CPHash (pipelined clients + server threads).
pub fn run_cphash(spec: &WorkloadSpec, opts: &DriverOptions) -> RunResult {
    spec.validate();
    let config = CpHashConfig {
        partitions: opts.partitions,
        clients: opts.client_threads,
        ring_capacity: opts.ring_capacity,
        server_pins: opts.server_pins.clone(),
        eviction: opts.eviction,
        pipeline: opts.pipeline,
        batch_size: opts.server_batch_size,
        ..CpHashConfig::new(opts.partitions, opts.client_threads)
            .with_capacity(spec.capacity_bytes, spec.value_bytes)
    };
    let (mut table, mut clients) = CpHash::new(config);

    // Prefill the table so lookups have realistic hit rates from the start.
    if spec.prefill {
        let client = &mut clients[0];
        let mut completions = Vec::new();
        for key in working_set_keys(spec) {
            client.submit_insert(key, &key.to_le_bytes());
            if client.outstanding() >= spec.batch {
                completions.clear();
                while client.poll(&mut completions) == 0 {
                    core::hint::spin_loop();
                }
            }
        }
        completions.clear();
        client.drain(&mut completions).expect("prefill completes");
    }

    let barrier = Arc::new(Barrier::new(opts.client_threads + 1));
    let sampler = TimelineSampler::start("cphash", opts.timeline_sample_ms);
    let mut workers = Vec::with_capacity(opts.client_threads);
    for (index, mut client) in clients.into_iter().enumerate() {
        let barrier = Arc::clone(&barrier);
        let spec = *spec;
        let pin = opts.client_pins.get(index).copied();
        let window = spec.batch;
        let ops = ops_per_client(&spec, opts.client_threads, index);
        let progress = sampler.progress();
        workers.push(std::thread::spawn(move || {
            let pinned = pin
                .map(|hw| pin_to_hw_thread(hw).is_pinned())
                .unwrap_or(false);
            let mut stream = OpStream::for_client(&spec, index, ops);
            let mut tally = ThreadTally {
                pinned,
                ..Default::default()
            };
            let mut completions: Vec<cphash::Completion> = Vec::with_capacity(window);
            barrier.wait();
            loop {
                // Keep the pipeline full: queue requests until the window is
                // reached or the stream runs dry.
                while client.outstanding() < window {
                    match stream.next() {
                        Some(Op::Lookup(key)) => {
                            client.submit_lookup(key);
                            tally.lookups += 1;
                        }
                        Some(Op::Insert(key)) => {
                            client.submit_insert(key, &key.to_le_bytes());
                            tally.inserts += 1;
                        }
                        None => break,
                    }
                }
                if stream.remaining() == 0 && client.outstanding() == 0 {
                    break;
                }
                completions.clear();
                if client.poll(&mut completions) == 0 {
                    client.flush();
                    core::hint::spin_loop();
                }
                for c in &completions {
                    tally.operations += 1;
                    if matches!(c.kind, CompletionKind::LookupHit(_)) {
                        tally.hits += 1;
                    }
                }
                // One relaxed add per completion batch keeps the sampler fed
                // without perturbing the per-op hot path.
                if !completions.is_empty() {
                    // relaxed: progress counter read by the live reporter
                    progress.fetch_add(completions.len() as u64, Ordering::Relaxed);
                }
            }
            tally
        }));
    }

    barrier.wait();
    let watch = Stopwatch::start();
    let tallies: Vec<ThreadTally> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread panicked"))
        .collect();
    let elapsed = watch.elapsed_secs();
    let timeline = sampler.finish();

    let snapshot = table.snapshot();
    table.shutdown();
    let table_stats = table.partition_stats();

    let mut result = RunResult {
        label: "cphash".to_string(),
        operations: 0,
        elapsed_secs: elapsed,
        lookups: 0,
        lookup_hits: 0,
        inserts: 0,
        table_stats,
        mean_server_utilization: Some(snapshot.mean_utilization),
        batch: snapshot.batch,
        lock_contention: None,
        pinned_client_threads: 0,
        timeline,
    };
    for t in tallies {
        result.operations += t.operations;
        result.lookups += t.lookups;
        result.lookup_hits += t.hits;
        result.inserts += t.inserts;
        result.pinned_client_threads += usize::from(t.pinned);
    }
    result
}

/// Run the workload against LockHash (one worker per client thread).
pub fn run_lockhash(spec: &WorkloadSpec, opts: &DriverOptions) -> RunResult {
    spec.validate();
    let config = LockHashConfig::new(opts.partitions)
        .with_capacity(spec.capacity_bytes, spec.value_bytes)
        .with_eviction(opts.eviction)
        .with_lock_kind(opts.lock_kind);
    let table = Arc::new(LockHash::new(config));

    if spec.prefill {
        // Parallel prefill: split the working set across the client threads.
        let keys: Vec<u64> = working_set_keys(spec).collect();
        let chunk = keys.len().div_ceil(opts.client_threads.max(1));
        std::thread::scope(|scope| {
            for slice in keys.chunks(chunk.max(1)) {
                let table = Arc::clone(&table);
                scope.spawn(move || {
                    for &key in slice {
                        table.insert(key, &key.to_le_bytes());
                    }
                });
            }
        });
    }

    let barrier = Arc::new(Barrier::new(opts.client_threads + 1));
    let sampler = TimelineSampler::start("lockhash", opts.timeline_sample_ms);
    let mut workers = Vec::with_capacity(opts.client_threads);
    for index in 0..opts.client_threads {
        let table = Arc::clone(&table);
        let barrier = Arc::clone(&barrier);
        let spec = *spec;
        let pin = opts.client_pins.get(index).copied();
        let ops = ops_per_client(&spec, opts.client_threads, index);
        let progress = sampler.progress();
        workers.push(std::thread::spawn(move || {
            let pinned = pin
                .map(|hw| pin_to_hw_thread(hw).is_pinned())
                .unwrap_or(false);
            let mut tally = ThreadTally {
                pinned,
                ..Default::default()
            };
            let mut value_buf = Vec::with_capacity(spec.value_bytes);
            let stream = OpStream::for_client(&spec, index, ops);
            // Flush the shared progress counter in chunks so the timeline
            // sampler never becomes a contended per-op atomic.
            const FLUSH_EVERY: u64 = 4096;
            let mut unflushed = 0u64;
            barrier.wait();
            for op in stream {
                match op {
                    Op::Lookup(key) => {
                        tally.lookups += 1;
                        if table.lookup(key, &mut value_buf) {
                            tally.hits += 1;
                        }
                    }
                    Op::Insert(key) => {
                        tally.inserts += 1;
                        table.insert(key, &key.to_le_bytes());
                    }
                }
                tally.operations += 1;
                unflushed += 1;
                if unflushed == FLUSH_EVERY {
                    progress.fetch_add(unflushed, Ordering::Relaxed); // relaxed: progress counter read by the live reporter
                    unflushed = 0;
                }
            }
            if unflushed > 0 {
                progress.fetch_add(unflushed, Ordering::Relaxed); // relaxed: progress counter read by the live reporter
            }
            tally
        }));
    }

    barrier.wait();
    let watch = Stopwatch::start();
    let tallies: Vec<ThreadTally> = workers
        .into_iter()
        .map(|w| w.join().expect("worker thread panicked"))
        .collect();
    let elapsed = watch.elapsed_secs();
    let timeline = sampler.finish();

    let mut result = RunResult {
        label: "lockhash".to_string(),
        operations: 0,
        elapsed_secs: elapsed,
        lookups: 0,
        lookup_hits: 0,
        inserts: 0,
        table_stats: table.stats(),
        mean_server_utilization: None,
        batch: cphash::BatchStats::default(),
        lock_contention: Some(table.lock_stats().contention_ratio()),
        pinned_client_threads: 0,
        timeline,
    };
    for t in tallies {
        result.operations += t.operations;
        result.lookups += t.lookups;
        result.lookup_hits += t.hits;
        result.inserts += t.inserts;
        result.pinned_client_threads += usize::from(t.pinned);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec {
            working_set_bytes: 64 * 1024,
            capacity_bytes: 64 * 1024,
            operations: 40_000,
            batch: 256,
            ..Default::default()
        }
    }

    #[test]
    fn cphash_driver_completes_every_operation() {
        let spec = small_spec();
        let result = run_cphash(&spec, &DriverOptions::new(2, 2));
        assert_eq!(result.operations, spec.operations);
        assert_eq!(result.lookups + result.inserts, spec.operations);
        assert!(result.throughput() > 0.0);
        // With prefill and capacity == working set, most lookups hit.
        assert!(result.hit_rate() > 0.8, "hit rate {}", result.hit_rate());
        assert!(result.mean_server_utilization.is_some());
        assert_eq!(result.label, "cphash");
        // The sampler's final catch-up point guarantees a non-empty
        // timeline even for runs shorter than one sampling interval.
        assert!(!result.timeline.points.is_empty());
        assert!(result.timeline.points.iter().all(|p| p.y > 0.0));
    }

    #[test]
    fn timeline_sampling_can_be_disabled() {
        let spec = small_spec();
        let mut opts = DriverOptions::new(2, 2);
        opts.timeline_sample_ms = 0;
        let result = run_cphash(&spec, &opts);
        assert_eq!(result.operations, spec.operations);
        assert!(result.timeline.points.is_empty());
    }

    #[test]
    fn lockhash_driver_completes_every_operation() {
        let spec = small_spec();
        let result = run_lockhash(&spec, &DriverOptions::new(2, 64));
        assert_eq!(result.operations, spec.operations);
        assert!(result.throughput() > 0.0);
        assert!(result.hit_rate() > 0.8, "hit rate {}", result.hit_rate());
        assert!(result.lock_contention.is_some());
        assert_eq!(result.label, "lockhash");
        assert!(!result.timeline.points.is_empty());
    }

    #[test]
    fn both_drivers_respect_the_insert_ratio() {
        let mut spec = small_spec();
        spec.operations = 20_000;
        spec.insert_ratio = 0.5;
        for result in [
            run_cphash(&spec, &DriverOptions::new(2, 2)),
            run_lockhash(&spec, &DriverOptions::new(2, 16)),
        ] {
            let ratio = result.inserts as f64 / result.operations as f64;
            assert!(
                (ratio - 0.5).abs() < 0.05,
                "{}: insert ratio {ratio}",
                result.label
            );
        }
    }

    #[test]
    fn no_prefill_means_cold_misses() {
        let mut spec = small_spec();
        spec.prefill = false;
        spec.insert_ratio = 0.0;
        spec.operations = 5_000;
        let result = run_cphash(&spec, &DriverOptions::new(1, 2));
        assert_eq!(result.lookup_hits, 0, "nothing was ever inserted");
        let result = run_lockhash(&spec, &DriverOptions::new(1, 16));
        assert_eq!(result.lookup_hits, 0);
    }

    #[test]
    fn throughput_helpers() {
        let r = RunResult {
            label: "x".into(),
            operations: 1000,
            elapsed_secs: 2.0,
            lookups: 700,
            lookup_hits: 350,
            inserts: 300,
            table_stats: PartitionStats::default(),
            mean_server_utilization: None,
            batch: cphash::BatchStats::default(),
            lock_contention: None,
            pinned_client_threads: 0,
            timeline: DataSeries::new("x"),
        };
        assert_eq!(r.throughput(), 500.0);
        assert_eq!(r.throughput_per(10), 50.0);
        assert_eq!(r.throughput_per(0), 0.0);
        assert_eq!(r.hit_rate(), 0.5);
    }
}
