//! The `anykey_mixed` scenario: memcached-style byte-string keys with a
//! configurable get/set/delete mix, driven through the unified
//! [`KvClient`] trait so the *same* scenario runs against the in-process
//! table, CPSERVER over TCP (kvproto v2) and the memcached-style baseline
//! cluster — the §8.2 extension exercised end to end on every backend.

use cphash::{Completion, CompletionKind, KeyRef, KvClient, KvError, KvOp};
use cphash_perfmon::Stopwatch;

/// Parameters of one `anykey_mixed` run.
#[derive(Debug, Clone)]
pub struct AnyKeyMixOptions {
    /// Total operations to issue.
    pub operations: u64,
    /// Distinct byte-string keys ("user:NNNNNNNN"-style).
    pub distinct_keys: u64,
    /// Prefix for generated keys (varying it decorrelates runs).
    pub key_prefix: String,
    /// Value payload size in bytes.
    pub value_bytes: usize,
    /// Fraction of operations that are sets (inserts).
    pub set_ratio: f64,
    /// Fraction of operations that are deletes.
    pub delete_ratio: f64,
    /// Operations to keep in flight (capped by the backend's
    /// `recommended_window`).
    pub window: usize,
    /// Seed for the deterministic operation stream.
    pub seed: u64,
}

impl Default for AnyKeyMixOptions {
    fn default() -> Self {
        AnyKeyMixOptions {
            operations: 100_000,
            distinct_keys: 10_000,
            key_prefix: "user".to_string(),
            value_bytes: 32,
            set_ratio: 0.25,
            delete_ratio: 0.05,
            window: 256,
            seed: 0x0A17_BEE5,
        }
    }
}

impl AnyKeyMixOptions {
    /// Sanity-check the parameters.
    pub fn validate(&self) {
        assert!(self.operations > 0, "need at least one operation");
        assert!(self.distinct_keys > 0, "need at least one key");
        assert!(self.window > 0, "window must be positive");
        assert!(
            self.set_ratio >= 0.0 && self.delete_ratio >= 0.0,
            "ratios must be non-negative"
        );
        assert!(
            self.set_ratio + self.delete_ratio <= 1.0,
            "set + delete ratios must leave room for gets"
        );
    }
}

/// Result of one `anykey_mixed` run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnyKeyMixResult {
    /// Gets issued.
    pub gets: u64,
    /// Gets that returned a value.
    pub get_hits: u64,
    /// Sets issued.
    pub sets: u64,
    /// Sets the backend refused for capacity.
    pub set_failures: u64,
    /// Deletes issued.
    pub deletes: u64,
    /// Deletes that removed a present key.
    pub delete_hits: u64,
    /// Operations that completed `Failed(..)` (e.g. DELETE against a
    /// v1-only backend).
    pub failures: u64,
    /// Wall-clock for the timed phase, in nanoseconds.
    pub elapsed_nanos: u64,
}

impl AnyKeyMixResult {
    /// Operations per second.
    pub fn throughput(&self) -> f64 {
        let ops = (self.gets + self.sets + self.deletes) as f64;
        let secs = self.elapsed_nanos as f64 / 1e9;
        if secs <= 0.0 {
            0.0
        } else {
            ops / secs
        }
    }

    /// The backend-observable outcome (everything except timing), for
    /// cross-backend parity assertions.
    pub fn observation(&self) -> AnyKeyMixResult {
        AnyKeyMixResult {
            elapsed_nanos: 0,
            ..*self
        }
    }
}

/// Deterministic xorshift stream (decoupled from `OpStream`, which speaks
/// u64 keys).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn next_fraction(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// What one generated operation is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MixOp {
    Get,
    Set,
    Delete,
}

/// Run the scenario against any [`KvClient`] backend.
///
/// The operation stream is deterministic in `opts.seed`, so two backends
/// given the same options execute the *same* logical operations in the
/// same order — their [`AnyKeyMixResult::observation`]s must agree (the
/// stream keeps at most `window` operations in flight and never pipelines
/// two operations on the same key, so completion-order differences between
/// backends cannot change outcomes).
pub fn run_anykey_mixed(
    client: &mut dyn KvClient,
    opts: &AnyKeyMixOptions,
) -> Result<AnyKeyMixResult, KvError> {
    opts.validate();
    let mut rng = Rng(opts.seed | 1);
    let window = opts.window.min(client.recommended_window()).max(1);
    let value = vec![0xA5u8; opts.value_bytes];
    let mut result = AnyKeyMixResult::default();
    let mut completions: Vec<Completion> = Vec::with_capacity(window);
    // Token -> (operation kind, key rank), to attribute completions and
    // free the key.
    let mut in_flight: std::collections::HashMap<u64, (MixOp, u64)> =
        std::collections::HashMap::with_capacity(window * 2);
    // Keys with an operation in flight: skipped by the generator so the
    // scenario's outcome is independent of backend completion order.
    let mut busy: std::collections::HashSet<u64> =
        std::collections::HashSet::with_capacity(window * 2);
    let mut issued = 0u64;
    let mut key_buf = String::new();
    // An operation drawn from the stream whose key is still busy; held (not
    // discarded) so the logical operation sequence is a pure function of
    // the seed regardless of backend completion timing.
    let mut staged: Option<(MixOp, u64)> = None;

    let watch = Stopwatch::start();
    while issued < opts.operations || !in_flight.is_empty() {
        // Fill the window.
        while issued < opts.operations && in_flight.len() < window {
            let (op, rank) = staged.take().unwrap_or_else(|| {
                let frac = rng.next_fraction();
                let op = if frac < opts.set_ratio {
                    MixOp::Set
                } else if frac < opts.set_ratio + opts.delete_ratio {
                    MixOp::Delete
                } else {
                    MixOp::Get
                };
                (op, rng.next_u64() % opts.distinct_keys)
            });
            if busy.contains(&rank) {
                // An operation on this key is still in flight; issuing
                // another would make outcomes depend on completion order.
                // Park it until the key frees.
                staged = Some((op, rank));
                break;
            }
            busy.insert(rank);
            use core::fmt::Write as _;
            key_buf.clear();
            let _ = write!(key_buf, "{}:{:08}", opts.key_prefix, rank);
            let key = KeyRef::Bytes(key_buf.as_bytes());
            let token = match op {
                MixOp::Get => {
                    result.gets += 1;
                    client.submit(KvOp::Get(key))
                }
                MixOp::Set => {
                    result.sets += 1;
                    client.submit(KvOp::Insert(key, &value))
                }
                MixOp::Delete => {
                    result.deletes += 1;
                    client.submit(KvOp::Delete(key))
                }
            };
            in_flight.insert(token, (op, rank));
            issued += 1;
        }

        // Drain what is ready.
        let polled = client.poll_completions(&mut completions);
        if polled == 0 && !client.is_alive() {
            return Err(KvError::Disconnected);
        }
        for completion in completions.drain(..) {
            let Some((op, rank)) = in_flight.remove(&completion.token) else {
                continue;
            };
            busy.remove(&rank);
            match (op, completion.kind) {
                (MixOp::Get, CompletionKind::LookupHit(_)) => result.get_hits += 1,
                (MixOp::Get, CompletionKind::LookupMiss) => {}
                (MixOp::Set, CompletionKind::Inserted) => {}
                (MixOp::Set, CompletionKind::InsertFailed) => result.set_failures += 1,
                (MixOp::Delete, CompletionKind::Deleted(true)) => result.delete_hits += 1,
                (MixOp::Delete, CompletionKind::Deleted(false)) => {}
                (_, CompletionKind::Failed(_)) => result.failures += 1,
                (op, kind) => {
                    debug_assert!(false, "mismatched completion {kind:?} for {op:?}");
                }
            }
        }
    }
    result.elapsed_nanos = (watch.elapsed_secs() * 1e9) as u64;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cphash::{CpHash, CpHashConfig};

    #[test]
    fn in_process_mix_is_deterministic_and_accounts_every_op() {
        let opts = AnyKeyMixOptions {
            operations: 5_000,
            distinct_keys: 500,
            value_bytes: 16,
            set_ratio: 0.3,
            delete_ratio: 0.1,
            window: 64,
            ..Default::default()
        };
        let run = |seed_offset: u64| {
            let (mut table, mut clients) = CpHash::new(CpHashConfig::new(2, 1));
            let result = {
                let opts = AnyKeyMixOptions {
                    seed: opts.seed + seed_offset,
                    ..opts.clone()
                };
                run_anykey_mixed(&mut clients[0], &opts).expect("run completes")
            };
            drop(clients);
            table.shutdown();
            result
        };
        let a = run(0);
        let b = run(0);
        let c = run(1);
        assert_eq!(a.observation(), b.observation(), "same seed, same outcome");
        assert_ne!(a.observation(), c.observation(), "different seed differs");
        assert_eq!(a.gets + a.sets + a.deletes, opts.operations);
        assert!(a.sets > 0 && a.deletes > 0 && a.gets > 0);
        assert!(a.get_hits > 0, "a 30% set mix must produce hits");
        assert!(a.delete_hits > 0);
        assert_eq!(a.failures, 0);
        assert_eq!(a.set_failures, 0, "table sized for the working set");
        assert!(a.throughput() > 0.0);
    }

    #[test]
    #[should_panic(expected = "ratios")]
    fn overfull_ratios_are_rejected() {
        AnyKeyMixOptions {
            set_ratio: 0.8,
            delete_ratio: 0.4,
            ..Default::default()
        }
        .validate();
    }
}
