//! Connection-scaling scenario: many mostly-idle connections plus a paced
//! request stream.
//!
//! The ROADMAP's north star is millions of mostly-idle users, and the cost
//! that caps connection counts is not request throughput — it is what an
//! *idle* connection costs the front-end.  This scenario makes that cost
//! measurable: it parks `idle_connections` open-but-silent connections on
//! the server, then drives a fixed, paced request load over a handful of
//! active connections and reports client-observed batch latency.  The
//! server-side counterpart (worker CPU, `FrontendStats` wake-ups) is read
//! by the harness that owns the server — see the `ablate_frontend`
//! benchmark, which runs this scenario against both the epoll and the
//! busy-poll front-end and compares wake-ups at equal throughput.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use bytes::BytesMut;
use cphash_kvproto::{encode_lookup, ResponseDecoder};
use cphash_perfmon::LatencyHistogram;

/// Options for a connection-scaling run.
#[derive(Debug, Clone)]
pub struct ConnectionScalingOptions {
    /// Server address.
    pub addr: SocketAddr,
    /// Connections opened and then left idle for the whole run.
    pub idle_connections: usize,
    /// Connections carrying the request stream.
    pub active_connections: usize,
    /// Total lookups to send.
    pub requests: u64,
    /// Lookups per pipelined batch (one batch = one latency sample).
    pub pipeline: usize,
    /// Target request rate; `None` drives batches back-to-back.  Pacing
    /// leaves idle gaps, which is exactly where a busy-polling front-end
    /// burns CPU and an event-driven one sleeps.
    pub target_rps: Option<f64>,
}

impl Default for ConnectionScalingOptions {
    fn default() -> Self {
        ConnectionScalingOptions {
            addr: "127.0.0.1:0".parse().expect("valid literal address"),
            idle_connections: 1000,
            active_connections: 2,
            requests: 50_000,
            pipeline: 64,
            target_rps: Some(20_000.0),
        }
    }
}

/// Result of a connection-scaling run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnectionScalingResult {
    /// Idle connections actually opened (fd limits may cap the request).
    pub idle_open: usize,
    /// Lookups sent and answered.
    pub operations: u64,
    /// Wall-clock seconds for the request phase.
    pub elapsed_secs: f64,
    /// 99th-percentile batch round-trip, microseconds.
    pub batch_p99_us: u64,
    /// Mean batch round-trip, microseconds.
    pub batch_mean_us: f64,
}

impl ConnectionScalingResult {
    /// Requests per second over the request phase.
    pub fn throughput(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.operations as f64 / self.elapsed_secs
        }
    }
}

/// Run the scenario: park the idle set, then drive paced pipelined lookups
/// over the active set, measuring per-batch round-trip latency.
pub fn run_connection_scaling(
    opts: &ConnectionScalingOptions,
) -> std::io::Result<ConnectionScalingResult> {
    assert!(opts.active_connections > 0 && opts.pipeline > 0);

    // Park the idle herd.  Stop early (rather than fail) if the fd limit
    // bites; the caller can see how many actually opened.
    let mut idle: Vec<TcpStream> = Vec::with_capacity(opts.idle_connections);
    for _ in 0..opts.idle_connections {
        match TcpStream::connect(opts.addr) {
            Ok(stream) => idle.push(stream),
            Err(_) => break,
        }
    }
    let idle_open = idle.len();

    let mut active: Vec<(TcpStream, ResponseDecoder)> = (0..opts.active_connections)
        .map(|_| -> std::io::Result<_> {
            let stream = TcpStream::connect(opts.addr)?;
            stream.set_nodelay(true)?;
            Ok((stream, ResponseDecoder::new()))
        })
        .collect::<Result<_, _>>()?;

    let batch_interval = opts.target_rps.map(|rps| {
        assert!(rps > 0.0, "target_rps must be positive");
        Duration::from_secs_f64(opts.pipeline as f64 / rps)
    });

    let mut histogram = LatencyHistogram::new();
    let mut wire = BytesMut::with_capacity(opts.pipeline * 16);
    let mut read_buf = vec![0u8; 64 * 1024];
    let mut sent = 0u64;
    let mut conn_idx = 0usize;
    let started = Instant::now();
    let mut next_batch = started;

    while sent < opts.requests {
        if let Some(interval) = batch_interval {
            let now = Instant::now();
            if now < next_batch {
                std::thread::sleep(next_batch - now);
            }
            next_batch += interval;
        }
        let batch = (opts.requests - sent).min(opts.pipeline as u64) as usize;
        wire.clear();
        for i in 0..batch {
            encode_lookup(&mut wire, (sent + i as u64) % 4096);
        }
        let (stream, decoder) = &mut active[conn_idx];
        conn_idx = (conn_idx + 1) % opts.active_connections;

        let batch_start = Instant::now();
        stream.write_all(&wire)?;
        let mut received = 0usize;
        while received < batch {
            while let Some(_resp) = decoder
                .next_response()
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
            {
                received += 1;
                if received == batch {
                    break;
                }
            }
            if received < batch {
                let n = stream.read(&mut read_buf)?;
                if n == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed an active connection mid-batch",
                    ));
                }
                decoder.feed(&read_buf[..n]);
            }
        }
        histogram.record(batch_start.elapsed().as_micros() as u64);
        sent += batch as u64;
    }

    let elapsed_secs = started.elapsed().as_secs_f64();
    drop(idle);
    Ok(ConnectionScalingResult {
        idle_open,
        operations: sent,
        elapsed_secs,
        batch_p99_us: histogram.percentile(99.0),
        batch_mean_us: histogram.mean(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cphash_kvproto::{encode_response, RequestDecoder, RequestKind};
    use std::net::TcpListener;

    /// Minimal kv-protocol echo server (every lookup misses) that keeps
    /// idle connections parked without dedicating a thread to each beyond
    /// what the test needs.
    fn spawn_stub_server() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                std::thread::spawn(move || {
                    let mut decoder = RequestDecoder::new();
                    let mut buf = vec![0u8; 16 * 1024];
                    let mut out = BytesMut::new();
                    let mut requests = Vec::new();
                    loop {
                        let n = match stream.read(&mut buf) {
                            Ok(0) | Err(_) => return,
                            Ok(n) => n,
                        };
                        decoder.feed(&buf[..n]);
                        requests.clear();
                        if decoder.drain(&mut requests).is_err() {
                            return;
                        }
                        out.clear();
                        for req in &requests {
                            if req.kind == RequestKind::Lookup {
                                encode_response(&mut out, None);
                            }
                        }
                        if !out.is_empty() && stream.write_all(&out).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn scenario_accounts_for_every_request() {
        let addr = spawn_stub_server();
        let opts = ConnectionScalingOptions {
            addr,
            idle_connections: 16,
            active_connections: 2,
            requests: 1_000,
            pipeline: 50,
            target_rps: None,
        };
        let result = run_connection_scaling(&opts).expect("run succeeds");
        assert_eq!(result.operations, 1_000);
        assert_eq!(result.idle_open, 16);
        assert!(result.throughput() > 0.0);
        assert!(result.batch_p99_us >= 1);
        assert!(result.batch_mean_us > 0.0);
    }

    #[test]
    fn pacing_stretches_the_run() {
        let addr = spawn_stub_server();
        let opts = ConnectionScalingOptions {
            addr,
            idle_connections: 0,
            active_connections: 1,
            requests: 500,
            pipeline: 50,
            // 2 500 req/s over 500 requests: the run must take ≥ ~150 ms
            // even on a fast loopback.
            target_rps: Some(2_500.0),
        };
        let result = run_connection_scaling(&opts).expect("run succeeds");
        assert_eq!(result.operations, 500);
        assert!(
            result.elapsed_secs > 0.15,
            "paced run finished in {:.3}s",
            result.elapsed_secs
        );
    }
}
