//! Workload generation and benchmark drivers.
//!
//! The paper's microbenchmark (§6) "generates random queries and performs
//! them on the hash table", parameterized by the number of client hardware
//! threads, the number of partitions, the working-set size, the maximum
//! hash-table size, the INSERT ratio and the batch size.  This crate
//! provides that benchmark as a library so every figure harness, example
//! and test drives the two tables through exactly the same code:
//!
//! * [`WorkloadSpec`] — the §6 parameter set, with presets for each figure.
//! * [`OpStream`] — deterministic per-thread streams of lookup/insert
//!   operations over the keyspace implied by the working set (uniform, or
//!   Zipfian for the skewed web-cache example).
//! * [`driver`] — multi-threaded drivers that run a spec against a
//!   [`cphash::CpHash`] (pipelined clients + pinned servers) or a
//!   [`cphash_lockhash::LockHash`] (one worker per hardware thread), and
//!   return throughput plus table statistics.
//! * [`tcp`] — a TCP load generator speaking the CPSERVER/LOCKSERVER wire
//!   protocol, used by the Figure 13/14 harnesses.
//! * [`scaling`] — the connection-scaling scenario: park thousands of idle
//!   connections and drive a paced request stream, used to compare the
//!   epoll and busy-poll front-ends.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod anykey;
pub mod driver;
pub mod ops;
pub mod scaling;
pub mod tcp;
pub mod workload;

pub use anykey::{run_anykey_mixed, AnyKeyMixOptions, AnyKeyMixResult};
pub use driver::{run_cphash, run_lockhash, DriverOptions, RunResult};
pub use ops::{KeyDistribution, Op, OpStream};
pub use scaling::{run_connection_scaling, ConnectionScalingOptions, ConnectionScalingResult};
pub use workload::WorkloadSpec;
