//! Deterministic operation streams.

use serde::{Deserialize, Serialize};

use crate::workload::WorkloadSpec;

/// How keys are drawn from the working set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KeyDistribution {
    /// Uniformly random keys — the paper's microbenchmark.
    Uniform,
    /// Zipf-distributed keys with the given exponent (0.99 ≈ typical web
    /// cache skew); used by the web-cache example.
    Zipf(f64),
}

/// One benchmark operation.  Values in the microbenchmark equal the key
/// ("the value is the same as the key (8 bytes)", §6), so an `Insert` only
/// needs to carry the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Look up a key.
    Lookup(u64),
    /// Insert the key with its 8-byte value (the key itself).
    Insert(u64),
}

impl Op {
    /// The key this operation touches.
    pub fn key(&self) -> u64 {
        match *self {
            Op::Lookup(k) | Op::Insert(k) => k,
        }
    }

    /// Is this an insert?
    pub fn is_insert(&self) -> bool {
        matches!(self, Op::Insert(_))
    }
}

/// A deterministic stream of operations for one client thread.
///
/// Streams for different `client_index` values are decorrelated but
/// reproducible, so a run can be repeated exactly (and so CPHash and
/// LockHash can be driven with the *same* operation sequences).
#[derive(Debug, Clone)]
pub struct OpStream {
    state: u64,
    distinct_keys: u64,
    insert_ratio: f64,
    distribution: KeyDistribution,
    /// Precomputed Zipf normalization constant (only for Zipf).
    zipf_norm: f64,
    remaining: u64,
}

impl OpStream {
    /// Build the stream for one client.
    pub fn for_client(spec: &WorkloadSpec, client_index: usize, operations: u64) -> Self {
        let state = spec
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((client_index as u64 + 1).wrapping_mul(0xA24B_AED4_963E_E407))
            | 1;
        let distinct_keys = spec.distinct_keys();
        let zipf_norm = match spec.distribution {
            KeyDistribution::Zipf(theta) => {
                // Harmonic-like normalization over a capped support; for
                // large keyspaces we approximate with the first 1e6 ranks,
                // which carries essentially all the probability mass for
                // theta close to 1.
                let n = distinct_keys.min(1_000_000);
                (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
            }
            KeyDistribution::Uniform => 0.0,
        };
        OpStream {
            state,
            distinct_keys,
            insert_ratio: spec.insert_ratio,
            distribution: spec.distribution,
            zipf_norm,
            remaining: operations,
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    fn next_fraction(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Draw the next key according to the configured distribution.
    ///
    /// Keys are scrambled through a multiplicative hash so that "key rank"
    /// does not correlate with partition assignment.
    pub fn next_key(&mut self) -> u64 {
        let rank = match self.distribution {
            KeyDistribution::Uniform => self.next_u64() % self.distinct_keys,
            KeyDistribution::Zipf(theta) => {
                let n = self.distinct_keys.min(1_000_000);
                let target = self.next_fraction() * self.zipf_norm;
                // Invert the CDF by linear scan with an early exit; the head
                // of the distribution is hit almost every time, so the
                // expected number of iterations is small.
                let mut acc = 0.0;
                let mut rank = n - 1;
                for i in 1..=n {
                    acc += 1.0 / (i as f64).powf(theta);
                    if acc >= target {
                        rank = i - 1;
                        break;
                    }
                }
                rank
            }
        };
        // Spread ranks over the 60-bit key space deterministically (an
        // odd-multiplier scramble, then masked to the legal key width).
        rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) & cphash_hashcore::MAX_KEY
    }

    /// Number of operations left in the stream.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl Iterator for OpStream {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let insert = self.next_fraction() < self.insert_ratio;
        let key = self.next_key();
        Some(if insert {
            Op::Insert(key)
        } else {
            Op::Lookup(key)
        })
    }
}

/// Enumerate the working set's keys (for prefill), in the same key encoding
/// the stream uses.
pub fn working_set_keys(spec: &WorkloadSpec) -> impl Iterator<Item = u64> {
    let distinct = spec.distinct_keys();
    (0..distinct).map(|rank| rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) & cphash_hashcore::MAX_KEY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            working_set_bytes: 64 * 1024,
            ..Default::default()
        }
    }

    #[test]
    fn streams_are_deterministic_and_decorrelated() {
        let a: Vec<Op> = OpStream::for_client(&spec(), 0, 1000).collect();
        let b: Vec<Op> = OpStream::for_client(&spec(), 0, 1000).collect();
        let c: Vec<Op> = OpStream::for_client(&spec(), 1, 1000).collect();
        assert_eq!(a, b, "same client index reproduces the same stream");
        assert_ne!(a, c, "different clients get different streams");
        assert_eq!(a.len(), 1000);
    }

    #[test]
    fn insert_ratio_is_respected() {
        let mut s = spec();
        s.insert_ratio = 0.3;
        let ops: Vec<Op> = OpStream::for_client(&s, 0, 100_000).collect();
        let inserts = ops.iter().filter(|o| o.is_insert()).count() as f64;
        let ratio = inserts / ops.len() as f64;
        assert!((ratio - 0.3).abs() < 0.02, "observed insert ratio {ratio}");
    }

    #[test]
    fn zero_and_one_insert_ratios_are_pure() {
        let mut s = spec();
        s.insert_ratio = 0.0;
        assert!(OpStream::for_client(&s, 0, 1000).all(|o| !o.is_insert()));
        s.insert_ratio = 1.0;
        assert!(OpStream::for_client(&s, 0, 1000).all(|o| o.is_insert()));
    }

    #[test]
    fn keys_stay_within_the_working_set() {
        let s = spec();
        let expected: HashSet<u64> = working_set_keys(&s).collect();
        assert_eq!(expected.len() as u64, s.distinct_keys());
        for op in OpStream::for_client(&s, 3, 10_000) {
            assert!(
                expected.contains(&op.key()),
                "key {} outside working set",
                op.key()
            );
        }
    }

    #[test]
    fn zipf_streams_are_skewed_towards_few_keys() {
        let mut s = spec();
        s.distribution = KeyDistribution::Zipf(0.99);
        let ops: Vec<Op> = OpStream::for_client(&s, 0, 20_000).collect();
        let mut counts: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for op in &ops {
            *counts.entry(op.key()).or_default() += 1;
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = freqs.iter().take(10).sum();
        // Under uniform the top 10 of 8192 keys would hold ~0.1 % of
        // accesses; Zipf(0.99) concentrates far more.
        assert!(
            top10 as f64 / ops.len() as f64 > 0.10,
            "top-10 keys hold only {top10} of {} accesses",
            ops.len()
        );
    }

    #[test]
    fn remaining_counts_down() {
        let mut s = OpStream::for_client(&spec(), 0, 3);
        assert_eq!(s.remaining(), 3);
        s.next();
        assert_eq!(s.remaining(), 2);
        s.next();
        s.next();
        assert_eq!(s.next(), None);
        assert_eq!(s.remaining(), 0);
    }
}
