//! Converting miss counts into approximate cycles.
//!
//! Figure 6 of the paper reports, per operation, not only how many L2/L3
//! misses each design incurs but also *how much each miss costs*: CPHash's
//! L3 misses average 381 cycles while LockHash's cost 1,421 cycles, because
//! LockHash puts far more pressure on the interconnect and DRAM
//! controllers.  The cost model here reproduces that effect with a small
//! analytic formula:
//!
//! * every miss has a base service latency that depends on where it was
//!   served (shared L3, a peer's cache, a remote socket, DRAM);
//! * DRAM / cross-socket misses additionally pay a queueing penalty that
//!   grows super-linearly with the aggregate off-socket miss *load*
//!   (threads × misses-per-operation), which is what makes LockHash's
//!   misses more expensive than CPHash's even though the hardware is the
//!   same.
//!
//! The constants are calibrated so that feeding in the paper's Figure 6
//! miss counts yields cycle numbers in the right regime; the benchmark
//! harness prints both the paper's numbers and the model's output so the
//! comparison is explicit.

use serde::{Deserialize, Serialize};

use crate::counters::MissCounts;

/// Latency / contention parameters for the cycle estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cycles of non-memory work per hash-table operation.
    pub base_cycles_per_op: f64,
    /// Cycles for a miss served by the socket's shared L3.
    pub l3_hit_cycles: f64,
    /// Cycles for a miss served by a peer private cache on the same socket.
    pub peer_transfer_cycles: f64,
    /// Base cycles for a miss served by a remote socket's cache.
    pub remote_socket_cycles: f64,
    /// Base cycles for a miss served by DRAM, before queueing.
    pub dram_cycles: f64,
    /// Queueing coefficient: extra cycles per unit of off-socket load.
    pub contention_coefficient: f64,
    /// Exponent applied to the off-socket load (super-linear queueing).
    pub contention_exponent: f64,
    /// Fraction of miss latency that is *not* hidden by out-of-order
    /// execution ("The overall latency of an operation under LOCKHASH is
    /// less than the sum of cache miss latencies due to out-of-order
    /// execution and pipelining", §6.2).
    pub exposed_fraction: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            base_cycles_per_op: 300.0,
            l3_hit_cycles: 55.0,
            peer_transfer_cycles: 160.0,
            remote_socket_cycles: 280.0,
            dram_cycles: 200.0,
            contention_coefficient: 0.04,
            contention_exponent: 1.55,
            exposed_fraction: 0.55,
        }
    }
}

/// The cycle estimate for one thread role.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleEstimate {
    /// Estimated cycles per operation (including base work).
    pub cycles_per_op: f64,
    /// Average cost of one of the paper's "L2 misses".
    pub l2_miss_cost: f64,
    /// Average cost of one of the paper's "L3 misses".
    pub l3_miss_cost: f64,
}

impl CostModel {
    /// Off-socket load metric: how many L3-class misses per operation the
    /// whole machine generates, scaled by the number of threads issuing
    /// them.
    pub fn offsocket_load(&self, threads: usize, l3_misses_per_op: f64) -> f64 {
        threads as f64 * l3_misses_per_op
    }

    /// Average cost of an L2-class miss, given the per-op counters
    /// (peer-cache transfers are costlier than L3 hits).
    pub fn l2_miss_cost(&self, counts: &MissCounts) -> f64 {
        if counts.l2_misses == 0 {
            return self.l3_hit_cycles;
        }
        let peer = counts.l2_from_peer as f64;
        let l3 = (counts.l2_misses - counts.l2_from_peer) as f64;
        (peer * self.peer_transfer_cycles + l3 * self.l3_hit_cycles) / counts.l2_misses as f64
    }

    /// Average cost of an L3-class miss under the given off-socket load.
    pub fn l3_miss_cost(&self, counts: &MissCounts, offsocket_load: f64) -> f64 {
        let queueing =
            self.contention_coefficient * offsocket_load.max(0.0).powf(self.contention_exponent);
        if counts.l3_misses == 0 {
            return self.dram_cycles + queueing;
        }
        let dram = counts.l3_from_dram as f64;
        let remote = (counts.l3_misses - counts.l3_from_dram) as f64;
        let base = (dram * self.dram_cycles + remote * self.remote_socket_cycles)
            / counts.l3_misses as f64;
        base + queueing
    }

    /// Estimate cycles per operation for a role whose per-operation miss
    /// profile is `counts / operations`, with `threads` such threads running
    /// concurrently.
    pub fn estimate(&self, counts: &MissCounts, operations: u64, threads: usize) -> CycleEstimate {
        let ops = operations.max(1) as f64;
        let l2_per_op = counts.l2_misses as f64 / ops;
        let l3_per_op = counts.l3_misses as f64 / ops;
        let load = self.offsocket_load(threads, l3_per_op);
        let l2_cost = self.l2_miss_cost(counts);
        let l3_cost = self.l3_miss_cost(counts, load);
        let memory = l2_per_op * l2_cost + l3_per_op * l3_cost;
        CycleEstimate {
            cycles_per_op: self.base_cycles_per_op + self.exposed_fraction * memory,
            l2_miss_cost: l2_cost,
            l3_miss_cost: l3_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(l2: u64, peer: u64, l3: u64, dram: u64, ops: u64) -> MissCounts {
        MissCounts {
            accesses: (l2 + l3) * 2,
            private_hits: 0,
            l2_misses: l2 * ops,
            l2_from_peer: peer * ops,
            l3_misses: l3 * ops,
            l3_from_dram: dram * ops,
        }
    }

    #[test]
    fn more_load_means_costlier_l3_misses() {
        let m = CostModel::default();
        let c = counts(2, 1, 4, 3, 100);
        let cheap = m.l3_miss_cost(&c, m.offsocket_load(10, 1.0));
        let pricey = m.l3_miss_cost(&c, m.offsocket_load(160, 4.6));
        assert!(pricey > cheap * 1.5, "cheap={cheap:.0} pricey={pricey:.0}");
    }

    #[test]
    fn peer_transfers_cost_more_than_l3_hits() {
        let m = CostModel::default();
        let mostly_l3 = counts(10, 1, 0, 0, 1);
        let mostly_peer = counts(10, 9, 0, 0, 1);
        assert!(m.l2_miss_cost(&mostly_peer) > m.l2_miss_cost(&mostly_l3));
    }

    #[test]
    fn lockhash_like_profile_is_much_slower_than_cphash_like() {
        // Feed the paper's Figure 6 per-op miss profiles through the model:
        // CPHash client (1.0 L2 / 1.9 L3) vs LockHash (2.4 L2 / 4.6 L3 with
        // heavy sharing). The model must reproduce the ordering and a
        // substantial (>2x) gap in per-miss L3 cost.
        let m = CostModel::default();
        let ops = 1000;
        let cphash_client = counts(1, 0, 2, 2, ops); // ≈1.0 L2, ≈1.9 L3
        let lockhash = counts(2, 2, 5, 3, ops); // ≈2.4 L2, ≈4.6 L3
        let cp = m.estimate(&cphash_client, ops, 160);
        let lh = m.estimate(&lockhash, ops, 160);
        assert!(
            lh.cycles_per_op > 2.0 * cp.cycles_per_op,
            "lockhash {:.0} vs cphash {:.0}",
            lh.cycles_per_op,
            cp.cycles_per_op
        );
        assert!(
            lh.l3_miss_cost > 1.8 * cp.l3_miss_cost,
            "lockhash l3 cost {:.0} vs cphash {:.0}",
            lh.l3_miss_cost,
            cp.l3_miss_cost
        );
        // And the absolute regime is right: hundreds-to-thousands of cycles.
        assert!(cp.cycles_per_op > 400.0 && cp.cycles_per_op < 2500.0);
        assert!(lh.cycles_per_op > 1500.0 && lh.cycles_per_op < 10000.0);
    }

    #[test]
    fn zero_misses_is_just_base_cycles() {
        let m = CostModel::default();
        let est = m.estimate(&MissCounts::default(), 100, 16);
        assert!((est.cycles_per_op - m.base_cycles_per_op).abs() < 1e-9);
    }
}
