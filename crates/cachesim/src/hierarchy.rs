//! The cache-hierarchy simulator proper.
//!
//! A [`CacheHierarchy`] models, at cache-line granularity:
//!
//! * one private cache per hardware thread (the paper's per-core L1+L2),
//! * one shared last-level cache per socket (the paper's 30 MB L3),
//! * an ownership directory tracking which private caches currently hold
//!   each line, so writes invalidate remote copies the way a MESI-style
//!   protocol would.
//!
//! Every [`CacheHierarchy::access_line`] is classified into the same
//! categories the paper's performance counters report: a private-cache hit,
//! an "L2 miss" satisfied on-socket (from the shared L3 or a peer's private
//! cache), or an "L3 miss" that leaves the socket (remote cache or DRAM).
//! The caller attributes each access to an [`AccessTag`] and accumulates the
//! outcome in a [`Breakdown`].

use std::collections::HashMap;

use cphash_cacheline::geometry::{lines_touched, LineId};

use crate::config::CacheConfig;
use crate::counters::Breakdown;
use crate::lru::LruSet;
use crate::tag::AccessTag;

/// Read or write. Writes invalidate other private copies of the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store (obtains exclusive ownership of the line).
    Write,
}

/// Where a simulated access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Hit in the thread's own private cache (no coherence traffic).
    PrivateHit,
    /// Missed privately, served by the socket's shared L3 — paper "L2 miss".
    L2MissSharedL3,
    /// Missed privately, served by a peer private cache on the same socket
    /// (cache-to-cache transfer) — paper "L2 miss", but more expensive.
    L2MissPeerCache,
    /// Served by a cache on another socket — paper "L3 miss".
    L3MissRemoteSocket,
    /// Served by DRAM — paper "L3 miss".
    L3MissDram,
}

impl AccessOutcome {
    /// Is this one of the paper's "L2 miss" events?
    pub fn is_l2_miss(self) -> bool {
        matches!(
            self,
            AccessOutcome::L2MissSharedL3 | AccessOutcome::L2MissPeerCache
        )
    }

    /// Is this one of the paper's "L3 miss" events?
    pub fn is_l3_miss(self) -> bool {
        matches!(
            self,
            AccessOutcome::L3MissRemoteSocket | AccessOutcome::L3MissDram
        )
    }
}

/// Trace-driven model of private caches + per-socket L3 + coherence
/// directory.
pub struct CacheHierarchy {
    config: CacheConfig,
    private: Vec<LruSet>,
    l3: Vec<LruSet>,
    /// Which private caches hold each line. Small vectors: a hash-table line
    /// is rarely shared by more than a handful of threads at once.
    owners: HashMap<LineId, Vec<usize>>,
    accesses: u64,
}

impl CacheHierarchy {
    /// Build an empty (cold) hierarchy for the given configuration.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.hw_threads > 0, "need at least one hardware thread");
        assert!(
            config.threads_per_socket > 0,
            "need at least one thread per socket"
        );
        let private = (0..config.hw_threads)
            .map(|_| LruSet::new(config.private_lines()))
            .collect();
        let l3 = (0..config.sockets())
            .map(|_| LruSet::new(config.l3_lines()))
            .collect();
        CacheHierarchy {
            config,
            private,
            l3,
            owners: HashMap::new(),
            accesses: 0,
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Total simulated accesses so far.
    pub fn total_accesses(&self) -> u64 {
        self.accesses
    }

    /// Simulate one access by `thread` to the single cache line `line`.
    pub fn access_line(&mut self, thread: usize, line: LineId, kind: AccessKind) -> AccessOutcome {
        assert!(thread < self.config.hw_threads, "thread id out of range");
        self.accesses += 1;
        let socket = self.config.socket_of(thread);

        let in_private = self.private[thread].contains(line);
        let outcome = if in_private {
            match kind {
                AccessKind::Read => {
                    self.private[thread].touch(line);
                    AccessOutcome::PrivateHit
                }
                AccessKind::Write => {
                    // Upgrade: if other private caches hold the line, they
                    // must be invalidated; the cost is equivalent to
                    // fetching the line from wherever the farthest copy is.
                    let outcome = self.classify_upgrade(thread, socket, line);
                    self.invalidate_others(thread, line);
                    self.private[thread].touch(line);
                    outcome
                }
            }
        } else {
            let outcome = self.classify_fetch(thread, socket, line);
            if kind == AccessKind::Write {
                self.invalidate_others(thread, line);
            }
            self.fill_private(thread, line);
            outcome
        };

        // Any access allocates/refreshes the line in the local socket's L3
        // (a non-inclusive but allocating last-level cache).
        self.l3[socket].insert(line);
        outcome
    }

    /// Simulate an access to an object of `len` bytes starting at `addr`,
    /// recording each touched line's outcome under `tag` in `breakdown`.
    pub fn access(
        &mut self,
        thread: usize,
        addr: u64,
        len: usize,
        kind: AccessKind,
        tag: AccessTag,
        breakdown: &mut Breakdown,
    ) {
        let lines: Vec<LineId> = lines_touched(addr, len).collect();
        for line in lines {
            let outcome = self.access_line(thread, line, kind);
            Self::record(breakdown, tag, outcome);
        }
    }

    /// Record one outcome under `tag`.
    pub fn record(breakdown: &mut Breakdown, tag: AccessTag, outcome: AccessOutcome) {
        let row = breakdown.row_mut(tag);
        row.accesses += 1;
        match outcome {
            AccessOutcome::PrivateHit => row.private_hits += 1,
            AccessOutcome::L2MissSharedL3 => row.l2_misses += 1,
            AccessOutcome::L2MissPeerCache => {
                row.l2_misses += 1;
                row.l2_from_peer += 1;
            }
            AccessOutcome::L3MissRemoteSocket => row.l3_misses += 1,
            AccessOutcome::L3MissDram => {
                row.l3_misses += 1;
                row.l3_from_dram += 1;
            }
        }
    }

    /// Pre-load a range of addresses into a thread's private cache and its
    /// socket's L3 without counting the accesses (used to model warmed-up
    /// steady state before measurement starts).
    pub fn warm(&mut self, thread: usize, addr: u64, len: usize) {
        let socket = self.config.socket_of(thread);
        for line in lines_touched(addr, len) {
            self.fill_private(thread, line);
            self.l3[socket].insert(line);
        }
    }

    /// Drop every cached line (cold caches).
    pub fn flush_all(&mut self) {
        for p in &mut self.private {
            p.clear();
        }
        for l3 in &mut self.l3 {
            l3.clear();
        }
        self.owners.clear();
    }

    fn classify_upgrade(&self, me: usize, my_socket: usize, line: LineId) -> AccessOutcome {
        let Some(owners) = self.owners.get(&line) else {
            return AccessOutcome::PrivateHit;
        };
        let mut worst = AccessOutcome::PrivateHit;
        for &owner in owners {
            if owner == me {
                continue;
            }
            let outcome = if self.config.socket_of(owner) == my_socket {
                AccessOutcome::L2MissPeerCache
            } else {
                AccessOutcome::L3MissRemoteSocket
            };
            worst = Self::worse(worst, outcome);
        }
        worst
    }

    fn classify_fetch(&self, me: usize, my_socket: usize, line: LineId) -> AccessOutcome {
        // A peer's private copy is preferred over the L3 only for
        // classification of *cost*: an on-socket peer means the data never
        // leaves the socket either way, so both count as the paper's
        // "L2 miss"; the peer transfer is just more expensive.
        let mut on_socket_peer = false;
        let mut off_socket_peer = false;
        if let Some(owners) = self.owners.get(&line) {
            for &owner in owners {
                if owner == me {
                    continue;
                }
                if self.config.socket_of(owner) == my_socket {
                    on_socket_peer = true;
                } else {
                    off_socket_peer = true;
                }
            }
        }
        if on_socket_peer {
            return AccessOutcome::L2MissPeerCache;
        }
        if self.l3[my_socket].contains(line) {
            return AccessOutcome::L2MissSharedL3;
        }
        if off_socket_peer {
            return AccessOutcome::L3MissRemoteSocket;
        }
        // Another socket's L3 also counts as a remote-socket transfer.
        for (socket, l3) in self.l3.iter().enumerate() {
            if socket != my_socket && l3.contains(line) {
                return AccessOutcome::L3MissRemoteSocket;
            }
        }
        AccessOutcome::L3MissDram
    }

    fn worse(a: AccessOutcome, b: AccessOutcome) -> AccessOutcome {
        fn rank(o: AccessOutcome) -> u8 {
            match o {
                AccessOutcome::PrivateHit => 0,
                AccessOutcome::L2MissSharedL3 => 1,
                AccessOutcome::L2MissPeerCache => 2,
                AccessOutcome::L3MissRemoteSocket => 3,
                AccessOutcome::L3MissDram => 4,
            }
        }
        if rank(a) >= rank(b) {
            a
        } else {
            b
        }
    }

    fn invalidate_others(&mut self, me: usize, line: LineId) {
        if let Some(owners) = self.owners.get_mut(&line) {
            for &owner in owners.iter() {
                if owner != me {
                    self.private[owner].remove(line);
                }
            }
            owners.clear();
            owners.push(me);
        }
        // A store makes every copy outside the writer's socket stale,
        // including ones sitting in other sockets' L3 caches.
        let my_socket = self.config.socket_of(me);
        for (socket, l3) in self.l3.iter_mut().enumerate() {
            if socket != my_socket {
                l3.remove(line);
            }
        }
    }

    fn fill_private(&mut self, thread: usize, line: LineId) {
        if let Some(evicted) = self.private[thread].insert(line) {
            if let Some(owners) = self.owners.get_mut(&evicted) {
                owners.retain(|&o| o != thread);
                if owners.is_empty() {
                    self.owners.remove(&evicted);
                }
            }
        }
        let owners = self.owners.entry(line).or_default();
        if !owners.contains(&thread) {
            owners.push(thread);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineId {
        LineId(n)
    }

    fn tiny() -> CacheHierarchy {
        // 2 sockets × 4 threads, 4 KB private (64 lines), 64 KB L3.
        CacheHierarchy::new(CacheConfig {
            private_bytes: 4 * 1024,
            l3_bytes: 64 * 1024,
            hw_threads: 8,
            threads_per_socket: 4,
        })
    }

    #[test]
    fn cold_read_is_a_dram_miss_then_a_hit() {
        let mut h = tiny();
        assert_eq!(
            h.access_line(0, line(10), AccessKind::Read),
            AccessOutcome::L3MissDram
        );
        assert_eq!(
            h.access_line(0, line(10), AccessKind::Read),
            AccessOutcome::PrivateHit
        );
        assert_eq!(h.total_accesses(), 2);
    }

    #[test]
    fn same_socket_sharing_is_an_l2_class_miss() {
        let mut h = tiny();
        h.access_line(0, line(7), AccessKind::Read);
        // Thread 1 (same socket) reads the line thread 0 holds.
        let outcome = h.access_line(1, line(7), AccessKind::Read);
        assert!(outcome.is_l2_miss(), "outcome = {outcome:?}");
        assert_eq!(outcome, AccessOutcome::L2MissPeerCache);
    }

    #[test]
    fn cross_socket_sharing_is_an_l3_class_miss() {
        let mut h = tiny();
        h.access_line(0, line(7), AccessKind::Read);
        // Thread 4 lives on socket 1.
        let outcome = h.access_line(4, line(7), AccessKind::Read);
        assert!(outcome.is_l3_miss(), "outcome = {outcome:?}");
        assert_eq!(outcome, AccessOutcome::L3MissRemoteSocket);
    }

    #[test]
    fn l3_hit_after_private_eviction() {
        let mut h = tiny();
        // Fill thread 0's private cache (64 lines) far beyond capacity.
        for i in 0..200u64 {
            h.access_line(0, line(i), AccessKind::Read);
        }
        // Line 0 fell out of the private cache but stays in the socket L3.
        let outcome = h.access_line(0, line(0), AccessKind::Read);
        assert_eq!(outcome, AccessOutcome::L2MissSharedL3);
    }

    #[test]
    fn write_invalidates_other_copies() {
        let mut h = tiny();
        h.access_line(0, line(3), AccessKind::Read);
        h.access_line(1, line(3), AccessKind::Read);
        // Thread 1 writes: thread 0 loses its copy.
        let w = h.access_line(1, line(3), AccessKind::Write);
        assert!(
            w.is_l2_miss(),
            "upgrade over a shared line costs coherence traffic"
        );
        // Thread 0's next read must go back to the socket (peer or L3).
        let r = h.access_line(0, line(3), AccessKind::Read);
        assert!(r.is_l2_miss(), "outcome = {r:?}");
    }

    #[test]
    fn exclusive_write_after_private_fill_is_a_hit() {
        let mut h = tiny();
        h.access_line(2, line(9), AccessKind::Write);
        assert_eq!(
            h.access_line(2, line(9), AccessKind::Write),
            AccessOutcome::PrivateHit
        );
        assert_eq!(
            h.access_line(2, line(9), AccessKind::Read),
            AccessOutcome::PrivateHit
        );
    }

    #[test]
    fn lock_ping_pong_costs_misses_every_time() {
        // The LockHash pathology: two threads on different sockets
        // alternately write the same lock line; every access is a miss.
        let mut h = tiny();
        h.access_line(0, line(42), AccessKind::Write);
        for _ in 0..10 {
            assert!(h.access_line(4, line(42), AccessKind::Write).is_l3_miss());
            assert!(h.access_line(0, line(42), AccessKind::Write).is_l3_miss());
        }
    }

    #[test]
    fn partition_locality_keeps_hits_local() {
        // The CPHash property: a server thread that repeatedly touches its
        // own partition's lines hits its private cache every time after the
        // first touch.
        let mut h = tiny();
        let mut misses = 0;
        for round in 0..50 {
            for i in 0..32u64 {
                let outcome = h.access_line(3, line(1000 + i), AccessKind::Write);
                if round > 0 && outcome != AccessOutcome::PrivateHit {
                    misses += 1;
                }
            }
        }
        assert_eq!(misses, 0, "partition working set fits and stays private");
    }

    #[test]
    fn warm_preloads_without_counting() {
        let mut h = tiny();
        h.warm(0, 0, 4096);
        assert_eq!(h.total_accesses(), 0);
        assert_eq!(
            h.access_line(0, line(0), AccessKind::Read),
            AccessOutcome::PrivateHit
        );
    }

    #[test]
    fn access_records_into_breakdown() {
        let mut h = tiny();
        let mut b = Breakdown::new();
        b.operations = 1;
        // A 128-byte object touches two lines, both cold.
        h.access(
            0,
            0,
            128,
            AccessKind::Read,
            AccessTag::HashTraversal,
            &mut b,
        );
        let row = b.row(AccessTag::HashTraversal);
        assert_eq!(row.accesses, 2);
        assert_eq!(row.l3_misses, 2);
        assert_eq!(row.l3_from_dram, 2);
        assert_eq!(b.total_l3_per_op(), 2.0);
    }

    #[test]
    fn flush_all_forgets_everything() {
        let mut h = tiny();
        h.access_line(0, line(5), AccessKind::Read);
        h.flush_all();
        assert_eq!(
            h.access_line(0, line(5), AccessKind::Read),
            AccessOutcome::L3MissDram
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_thread_id_panics() {
        let mut h = tiny();
        h.access_line(99, line(0), AccessKind::Read);
    }
}
