//! Software cache-hierarchy model.
//!
//! The paper's key evidence (Figures 6 and 7) is a per-operation breakdown
//! of L2 and L3 cache misses, attributed to the function that caused them
//! (spinlock acquire, hash-table traversal, message send/receive, …),
//! gathered with `rdpmc` hardware performance counters and a custom kernel
//! module.  Hardware counters are not available in this reproduction's
//! environment, so this crate provides the substitute described in
//! `DESIGN.md` §4: a trace-driven software model of the memory hierarchy.
//!
//! * [`CacheHierarchy`] models private per-hardware-thread caches (the
//!   paper's L1+L2), per-socket shared L3 caches, and a directory that
//!   tracks which caches hold which line.  Every simulated access is
//!   classified the same way the paper classifies counter events:
//!   - **L2 miss** — "missed in the local L2 cache, but hit in the shared
//!     L3 cache or a neighbor's L2 cache on the same socket";
//!   - **L3 miss** — "missed in the local L3 cache, and went to DRAM or
//!     another socket".
//! * [`AccessTag`] attributes each access to one of the paper's breakdown
//!   rows, and [`Breakdown`] accumulates per-tag miss counts.
//! * [`CostModel`] converts miss counts into approximate cycles using
//!   per-level latencies (calibrated against the paper's Figure 6).
//! * [`BucketProbeModel`] compares the expected per-probe cache-line
//!   traffic of the chained vs tagged-inline bucket layouts, predicting
//!   the speedup `ablate_prefetch` measures.
//! * [`opmodel`] replays the logical access stream of one CPHash or
//!   LockHash operation — which lock words, bucket heads, element headers,
//!   LRU pointers, message lines and value lines it touches — through the
//!   hierarchy, regenerating the Figure 6/7 tables.
//!
//! The model is deliberately simple (fully-associative LRU caches, no
//! prefetching, no out-of-order overlap); what it preserves is *which
//! accesses hit whose cache*, which is the property the paper's argument
//! rests on.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bucketmodel;
pub mod config;
pub mod costmodel;
pub mod counters;
pub mod hierarchy;
pub mod lru;
pub mod opmodel;
pub mod tag;

pub use bucketmodel::{BucketProbeModel, ProbeCost};
pub use config::CacheConfig;
pub use costmodel::CostModel;
pub use counters::{Breakdown, MissCounts};
pub use hierarchy::{AccessKind, AccessOutcome, CacheHierarchy};
pub use lru::LruSet;
pub use tag::AccessTag;
