//! Attribution tags for simulated memory accesses.

use serde::{Deserialize, Serialize};

/// Which function of the hash-table implementation an access belongs to.
///
/// These are exactly the rows of the paper's Figure 7 breakdown, plus a few
/// extra tags (`LruUpdate`, `ValueCopy`, `Other`) that the harness folds
/// into the closest paper row when printing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AccessTag {
    // LockHash rows.
    /// Acquiring/releasing the partition (or bucket) spinlock.
    SpinlockAcquire,
    /// Walking the bucket chain: bucket head plus element headers.
    HashTraversal,
    /// Inserting a new element: header writes, free-list, allocator state.
    HashInsert,
    /// Maintaining the LRU list (shared-memory table only; CPHash servers
    /// fold this into `ExecuteMessage` locality).
    LruUpdate,

    // CPHash client rows.
    /// Writing request messages into the client→server ring.
    SendMessage,
    /// Reading response messages from the server→client ring.
    ReceiveResponse,
    /// Touching the value bytes (read for LOOKUP, write for INSERT).
    AccessData,

    // CPHash server rows.
    /// Reading request messages from the client→server ring.
    ReceiveMessage,
    /// Writing response messages into the server→client ring.
    SendResponse,
    /// Executing the operation against the partition (buckets, headers,
    /// LRU, allocator) — all local to the server core by design.
    ExecuteMessage,

    /// Copying value bytes during INSERT (client side).
    ValueCopy,
    /// Anything else.
    Other,
}

impl AccessTag {
    /// All tags, in the order the Figure 7 table prints them.
    pub const ALL: [AccessTag; 12] = [
        AccessTag::SpinlockAcquire,
        AccessTag::HashTraversal,
        AccessTag::HashInsert,
        AccessTag::LruUpdate,
        AccessTag::SendMessage,
        AccessTag::ReceiveResponse,
        AccessTag::AccessData,
        AccessTag::ReceiveMessage,
        AccessTag::SendResponse,
        AccessTag::ExecuteMessage,
        AccessTag::ValueCopy,
        AccessTag::Other,
    ];

    /// Human-readable row label (matches the paper's Figure 7 wording).
    pub fn label(self) -> &'static str {
        match self {
            AccessTag::SpinlockAcquire => "Spinlock acquire",
            AccessTag::HashTraversal => "Hash table traversal",
            AccessTag::HashInsert => "Hash table insert",
            AccessTag::LruUpdate => "LRU update",
            AccessTag::SendMessage => "Send messages",
            AccessTag::ReceiveResponse => "Receive responses",
            AccessTag::AccessData => "Access data",
            AccessTag::ReceiveMessage => "Receive messages",
            AccessTag::SendResponse => "Send responses",
            AccessTag::ExecuteMessage => "Execute message",
            AccessTag::ValueCopy => "Value copy",
            AccessTag::Other => "Other",
        }
    }

    /// Dense index used by the counter arrays.
    pub fn index(self) -> usize {
        AccessTag::ALL
            .iter()
            .position(|t| *t == self)
            .expect("tag present in ALL")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_nonempty() {
        let mut labels: Vec<&str> = AccessTag::ALL.iter().map(|t| t.label()).collect();
        labels.sort_unstable();
        let before = labels.len();
        labels.dedup();
        assert_eq!(labels.len(), before);
        assert!(labels.iter().all(|l| !l.is_empty()));
    }

    #[test]
    fn index_round_trips() {
        for (i, tag) in AccessTag::ALL.iter().enumerate() {
            assert_eq!(tag.index(), i);
        }
    }
}
