//! Cache hierarchy configuration.

use serde::{Deserialize, Serialize};

/// Geometry of the modelled memory hierarchy.
///
/// The defaults describe the paper's evaluation machine (§6): Intel E7-8870,
/// 256 KB L2 per core, 30 MB L3 shared by the 10 cores of a socket, 8
/// sockets, 2 hardware threads per core.  The model folds L1 into the
/// private-cache capacity since the paper's counters only distinguish
/// "local L2" from "shared L3" from "remote".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Bytes of private cache per hardware thread (L1+L2 combined).
    pub private_bytes: usize,
    /// Bytes of shared last-level cache per socket.
    pub l3_bytes: usize,
    /// Number of hardware threads being modelled.
    pub hw_threads: usize,
    /// Hardware threads that share one socket (and therefore one L3).
    pub threads_per_socket: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::paper_machine()
    }
}

impl CacheConfig {
    /// The paper machine: 80 cores / 160 hardware threads, 256 KB L2 per
    /// core, 30 MB L3 per 10-core socket.
    pub const fn paper_machine() -> Self {
        CacheConfig {
            private_bytes: 256 * 1024,
            l3_bytes: 30 * 1024 * 1024,
            hw_threads: 160,
            threads_per_socket: 20,
        }
    }

    /// A small configuration for fast unit tests: 4 KB private caches,
    /// 64 KB L3, four threads per socket.
    pub const fn tiny(hw_threads: usize) -> Self {
        CacheConfig {
            private_bytes: 4 * 1024,
            l3_bytes: 64 * 1024,
            hw_threads,
            threads_per_socket: 4,
        }
    }

    /// A scaled-down machine for laptop-scale experiments: keeps the paper's
    /// per-level ratios but with `hw_threads` threads and `sockets` sockets.
    pub fn scaled(hw_threads: usize, sockets: usize) -> Self {
        let sockets = sockets.max(1);
        CacheConfig {
            private_bytes: 256 * 1024,
            l3_bytes: 30 * 1024 * 1024,
            hw_threads,
            threads_per_socket: hw_threads.div_ceil(sockets),
        }
    }

    /// Number of sockets implied by the thread counts.
    pub fn sockets(&self) -> usize {
        self.hw_threads.div_ceil(self.threads_per_socket)
    }

    /// Socket of a hardware thread.
    pub fn socket_of(&self, thread: usize) -> usize {
        thread / self.threads_per_socket
    }

    /// Private cache capacity in lines.
    pub fn private_lines(&self) -> usize {
        (self.private_bytes / cphash_cacheline::CACHE_LINE_SIZE).max(1)
    }

    /// L3 capacity in lines.
    pub fn l3_lines(&self) -> usize {
        (self.l3_bytes / cphash_cacheline::CACHE_LINE_SIZE).max(1)
    }

    /// Aggregate private-cache capacity across all threads, in bytes —
    /// the quantity the paper compares working sets against ("hash table
    /// sizes up to about 80 × 256 KB + 8 × 30 MB = 260 MB see the best
    /// performance improvement", §3.1).
    pub fn aggregate_cache_bytes(&self) -> usize {
        self.private_bytes * self.hw_threads / 2 + self.l3_bytes * self.sockets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_figures() {
        let c = CacheConfig::paper_machine();
        assert_eq!(c.sockets(), 8);
        assert_eq!(c.private_lines(), 4096);
        assert_eq!(c.l3_lines(), 491_520);
        // ~260 MB aggregate, the §3.1 number.
        let mb = c.aggregate_cache_bytes() / (1024 * 1024);
        assert!((255..=265).contains(&mb), "aggregate = {mb} MB");
    }

    #[test]
    fn socket_mapping() {
        let c = CacheConfig::paper_machine();
        assert_eq!(c.socket_of(0), 0);
        assert_eq!(c.socket_of(19), 0);
        assert_eq!(c.socket_of(20), 1);
        assert_eq!(c.socket_of(159), 7);
    }

    #[test]
    fn scaled_configs_are_consistent() {
        let c = CacheConfig::scaled(16, 2);
        assert_eq!(c.sockets(), 2);
        assert_eq!(c.threads_per_socket, 8);
        let t = CacheConfig::tiny(4);
        assert_eq!(t.sockets(), 1);
        assert!(t.private_lines() >= 1);
    }
}
