//! Operation-level access models for CPHash and LockHash.
//!
//! These models replay, through the [`CacheHierarchy`], the logical memory
//! accesses that one hash-table operation performs under each design:
//! which lock words, bucket heads, element headers, LRU pointers, message
//! lines and value bytes it touches, and from which hardware thread.  The
//! result is a per-function miss breakdown in the same shape as the paper's
//! Figures 6 and 7.
//!
//! The models intentionally mirror the descriptions in §3 and §6.2:
//!
//! * **LockHash** (per operation, executed entirely on the issuing client's
//!   hardware thread): acquire the partition spinlock, walk the bucket
//!   (bucket head + element header), update the LRU list (head pointer +
//!   neighbouring element headers), read or write the value, optionally
//!   insert (header + bucket head + allocator state), release the lock.
//! * **CPHash** (split between the client and the partition's server
//!   thread): the client writes request messages into the per-server ring
//!   (packed 8 per cache line), the server reads them, executes the
//!   operation against *its own* partition (whose metadata stays in its
//!   private cache), writes responses, and the client reads the responses
//!   and then touches the value bytes directly.
//!
//! Key placement, bucket counts and partition sizes are all derived from the
//! same workload parameters the real benchmark uses, so the model and the
//! measured throughput runs describe the same experiment.

use serde::{Deserialize, Serialize};

use crate::config::CacheConfig;
use crate::counters::Breakdown;
use crate::hierarchy::{AccessKind, CacheHierarchy};
use crate::tag::AccessTag;
use cphash_cacheline::CACHE_LINE_SIZE;

/// Base addresses of the synthetic address-space regions. Spaced far apart
/// so regions never alias.
mod region {
    pub const LOCKS: u64 = 0x0100_0000_0000;
    pub const BUCKETS: u64 = 0x0200_0000_0000;
    pub const HEADERS: u64 = 0x0300_0000_0000;
    pub const VALUES: u64 = 0x0400_0000_0000;
    pub const PARTITION_META: u64 = 0x0500_0000_0000;
    pub const REQUEST_RINGS: u64 = 0x0600_0000_0000;
    pub const RESPONSE_RINGS: u64 = 0x0700_0000_0000;
    pub const ALLOC_META: u64 = 0x0800_0000_0000;
}

/// Workload / machine parameters shared by both models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpModelParams {
    /// Cache geometry to simulate.
    pub cache: CacheConfig,
    /// Number of client hardware threads issuing operations.
    pub clients: usize,
    /// Number of CPHash server threads / partitions.
    pub servers: usize,
    /// Number of LockHash partitions (the paper uses 4,096).
    pub lock_partitions: usize,
    /// Total bytes of distinct values in the working set.
    pub working_set_bytes: usize,
    /// Bytes per value (8 in the microbenchmark).
    pub value_bytes: usize,
    /// Fraction of operations that are INSERTs.
    pub insert_ratio: f64,
    /// Whether the LRU list is maintained (vs. random eviction).
    pub lru: bool,
    /// Operations to simulate (split round-robin over clients).
    pub operations: u64,
    /// Ring capacity, in messages, of each client↔server lane.
    pub ring_capacity: usize,
    /// Seed for the deterministic key stream.
    pub seed: u64,
}

impl Default for OpModelParams {
    fn default() -> Self {
        // The Figure 6/7 configuration: 1 MB working set, 8-byte values,
        // 30% inserts, LRU, paper-machine thread counts.
        OpModelParams {
            cache: CacheConfig::paper_machine(),
            clients: 80,
            servers: 80,
            lock_partitions: 4096,
            working_set_bytes: 1024 * 1024,
            value_bytes: 8,
            insert_ratio: 0.3,
            lru: true,
            operations: 200_000,
            ring_capacity: 4096,
            seed: 0x5EED_CAFE,
        }
    }
}

impl OpModelParams {
    /// Number of distinct keys implied by the working set and value size.
    pub fn distinct_keys(&self) -> u64 {
        (self.working_set_bytes / self.value_bytes.max(1)).max(1) as u64
    }

    /// Buckets per design: the paper configures "an average of one element
    /// per bucket", so the bucket count equals the key count.
    pub fn total_buckets(&self) -> u64 {
        self.distinct_keys()
    }

    fn validate(&self) {
        assert!(self.clients > 0, "need at least one client");
        assert!(self.servers > 0, "need at least one server");
        assert!(self.lock_partitions > 0, "need at least one lock partition");
        assert!(self.value_bytes > 0, "values must have at least one byte");
        assert!(
            (0.0..=1.0).contains(&self.insert_ratio),
            "insert ratio must be a fraction"
        );
    }
}

/// Output of the CPHash model: the client-side and server-side breakdowns
/// (the two CPHash columns of Figure 6).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CpHashModelOutput {
    /// Misses attributed to client threads.
    pub client: Breakdown,
    /// Misses attributed to server threads.
    pub server: Breakdown,
}

/// Deterministic xorshift key stream so the model needs no external RNG and
/// runs identically everywhere.
#[derive(Debug, Clone)]
struct KeyStream {
    state: u64,
    distinct: u64,
}

impl KeyStream {
    fn new(seed: u64, distinct: u64) -> Self {
        KeyStream {
            state: seed.max(1),
            distinct: distinct.max(1),
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Next key in `[0, distinct)`.
    fn next_key(&mut self) -> u64 {
        self.next_u64() % self.distinct
    }

    /// Next uniform fraction in `[0, 1)`.
    fn next_fraction(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Simple 64-bit mix used to spread keys over partitions and buckets — the
/// same role as the paper's "simple hash function".
fn mix(key: u64) -> u64 {
    let mut x = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 32;
    x
}

fn key_addr_header(key: u64) -> u64 {
    region::HEADERS + key * CACHE_LINE_SIZE as u64
}

fn key_addr_value(key: u64, value_bytes: usize) -> u64 {
    region::VALUES + key * value_bytes as u64
}

fn bucket_addr(bucket: u64) -> u64 {
    // Bucket heads are 8-byte pointers, packed 8 per line.
    region::BUCKETS + bucket * 8
}

fn lock_addr(partition: u64) -> u64 {
    // Each lock padded to its own line (see cphash-sync::LockTable).
    region::LOCKS + partition * CACHE_LINE_SIZE as u64
}

fn partition_meta_addr(partition: u64) -> u64 {
    // Per-partition metadata (LRU head/tail, counts) in its own line.
    region::PARTITION_META + partition * CACHE_LINE_SIZE as u64
}

fn alloc_meta_addr(partition: u64) -> u64 {
    region::ALLOC_META + partition * CACHE_LINE_SIZE as u64
}

/// Simulate the LockHash design and return its per-function breakdown
/// (the right-hand column block of Figure 7).
pub fn simulate_lockhash(params: &OpModelParams) -> Breakdown {
    params.validate();
    let mut hierarchy = CacheHierarchy::new(params.cache);
    let mut breakdown = Breakdown::new();
    let mut keys = KeyStream::new(params.seed, params.distinct_keys());
    let buckets = params.total_buckets();
    let clients = params.clients.min(params.cache.hw_threads);

    // Track the most-recently-used key per partition so LRU updates touch a
    // realistic "previous head" element header.
    let mut lru_head: Vec<u64> = vec![u64::MAX; params.lock_partitions];

    for op in 0..params.operations {
        let client = (op % clients as u64) as usize;
        let key = keys.next_key();
        let is_insert = keys.next_fraction() < params.insert_ratio;
        let hashed = mix(key);
        let partition = (hashed % params.lock_partitions as u64) as usize;
        let bucket = hashed % buckets;

        // Acquire the partition spinlock (write: the lock word bounces).
        hierarchy.access(
            client,
            lock_addr(partition as u64),
            8,
            AccessKind::Write,
            AccessTag::SpinlockAcquire,
            &mut breakdown,
        );

        // Hash-table traversal: bucket head, then the element header.
        hierarchy.access(
            client,
            bucket_addr(bucket),
            8,
            AccessKind::Read,
            AccessTag::HashTraversal,
            &mut breakdown,
        );
        hierarchy.access(
            client,
            key_addr_header(key),
            CACHE_LINE_SIZE,
            AccessKind::Read,
            AccessTag::HashTraversal,
            &mut breakdown,
        );

        if params.lru {
            // LRU update: write this element's list pointers, the partition
            // LRU head, and the previous head's back pointer.
            hierarchy.access(
                client,
                key_addr_header(key),
                CACHE_LINE_SIZE,
                AccessKind::Write,
                AccessTag::LruUpdate,
                &mut breakdown,
            );
            hierarchy.access(
                client,
                partition_meta_addr(partition as u64),
                CACHE_LINE_SIZE,
                AccessKind::Write,
                AccessTag::LruUpdate,
                &mut breakdown,
            );
            let prev = lru_head[partition];
            if prev != u64::MAX && prev != key {
                hierarchy.access(
                    client,
                    key_addr_header(prev),
                    CACHE_LINE_SIZE,
                    AccessKind::Write,
                    AccessTag::LruUpdate,
                    &mut breakdown,
                );
            }
            lru_head[partition] = key;
        }

        if is_insert {
            // Insert: rewrite the element header, link it into the bucket,
            // touch the partition's allocator metadata, copy the value.
            hierarchy.access(
                client,
                key_addr_header(key),
                CACHE_LINE_SIZE,
                AccessKind::Write,
                AccessTag::HashInsert,
                &mut breakdown,
            );
            hierarchy.access(
                client,
                bucket_addr(bucket),
                8,
                AccessKind::Write,
                AccessTag::HashInsert,
                &mut breakdown,
            );
            hierarchy.access(
                client,
                alloc_meta_addr(partition as u64),
                CACHE_LINE_SIZE,
                AccessKind::Write,
                AccessTag::HashInsert,
                &mut breakdown,
            );
            hierarchy.access(
                client,
                key_addr_value(key, params.value_bytes),
                params.value_bytes,
                AccessKind::Write,
                AccessTag::AccessData,
                &mut breakdown,
            );
        } else {
            // Lookup: read the value.
            hierarchy.access(
                client,
                key_addr_value(key, params.value_bytes),
                params.value_bytes,
                AccessKind::Read,
                AccessTag::AccessData,
                &mut breakdown,
            );
        }

        // Release the lock: the line is already exclusive in our cache, so
        // this is a private hit; modelled for completeness.
        hierarchy.access(
            client,
            lock_addr(partition as u64),
            8,
            AccessKind::Write,
            AccessTag::SpinlockAcquire,
            &mut breakdown,
        );

        breakdown.operations += 1;
    }
    breakdown
}

/// Simulate the CPHash design and return client-side and server-side
/// breakdowns (the two left column blocks of Figure 7).
pub fn simulate_cphash(params: &OpModelParams) -> CpHashModelOutput {
    params.validate();
    let mut hierarchy = CacheHierarchy::new(params.cache);
    let mut client_bd = Breakdown::new();
    let mut server_bd = Breakdown::new();
    let mut keys = KeyStream::new(params.seed ^ 0xABCD, params.distinct_keys());
    let buckets_per_partition = (params.total_buckets() / params.servers as u64).max(1);

    let hw = params.cache.hw_threads;
    let clients = params.clients.min(hw);
    // Server threads occupy the SMT siblings of the client threads when the
    // modelled machine has enough hardware threads (the §6.1 placement);
    // otherwise they share the clients' thread ids, which only makes the
    // model pessimistic for CPHash.
    let server_thread = |s: usize| -> usize {
        let candidate = hw / 2 + (s % (hw / 2).max(1));
        if candidate < hw {
            candidate
        } else {
            s % hw
        }
    };

    // Per (client, server) ring cursors, in messages.
    let lanes = clients * params.servers;
    let mut req_cursor: Vec<u64> = vec![0; lanes];
    let mut resp_cursor: Vec<u64> = vec![0; lanes];
    let ring_bytes = (params.ring_capacity * 8) as u64;
    let lane_stride = cphash_cacheline::round_up_to_line(ring_bytes as usize) as u64 * 2;

    let req_addr = |client: usize, server: usize, cursor: u64| -> u64 {
        let lane = (client * params.servers + server) as u64;
        region::REQUEST_RINGS + lane * lane_stride + (cursor * 8) % ring_bytes
    };
    let resp_addr = |client: usize, server: usize, cursor: u64| -> u64 {
        let lane = (client * params.servers + server) as u64;
        region::RESPONSE_RINGS + lane * lane_stride + (cursor * 8) % ring_bytes
    };

    // Per-partition LRU head key (lives in the server's partition metadata).
    let mut lru_head: Vec<u64> = vec![u64::MAX; params.servers];

    // One pending operation, after the client has generated it and before
    // the phase that consumes it.
    struct PendingOp {
        client: usize,
        server: usize,
        lane: usize,
        key: u64,
        is_insert: bool,
        req_slot: u64,
        resp_slot: u64,
    }

    // The client pipelines a batch of requests before the server runs —
    // that asynchrony is exactly what lets consecutive messages to the same
    // server pack into shared cache lines (paper §3.4).  Each round, every
    // client queues `ops_per_client_round` operations, then servers drain
    // them, then clients collect responses and send the follow-up
    // (Ready/Decref) messages, which servers drain at the start of the next
    // round.
    let ops_per_client_round: u64 = 64;
    let round_ops = ops_per_client_round * clients as u64;
    let mut remaining = params.operations;
    let mut followups: Vec<(usize, usize, u64)> = Vec::new(); // (sthread, lane-client, slot) reads pending

    while remaining > 0 {
        let this_round = remaining.min(round_ops);
        let mut pending: Vec<PendingOp> = Vec::with_capacity(this_round as usize);

        // --- Phase A: clients queue request messages (batched, packed).
        for i in 0..this_round {
            let client = (i % clients as u64) as usize;
            let key = keys.next_key();
            let is_insert = keys.next_fraction() < params.insert_ratio;
            let hashed = mix(key);
            let server = (hashed % params.servers as u64) as usize;
            let lane = client * params.servers + server;
            let msg_bytes = if is_insert { 16 } else { 8 };
            let req_slot = req_cursor[lane];
            hierarchy.access(
                client,
                req_addr(client, server, req_slot),
                msg_bytes,
                AccessKind::Write,
                AccessTag::SendMessage,
                &mut client_bd,
            );
            req_cursor[lane] += if is_insert { 2 } else { 1 };
            let resp_slot = resp_cursor[lane];
            resp_cursor[lane] += 1;
            pending.push(PendingOp {
                client,
                server,
                lane,
                key,
                is_insert,
                req_slot,
                resp_slot,
            });
        }

        // --- Phase B: servers drain requests, execute, queue responses.
        // First finish off the previous round's follow-up messages.
        for (sthread, lane, slot) in followups.drain(..) {
            hierarchy.access(
                sthread,
                region::REQUEST_RINGS + (lane as u64) * lane_stride + (slot * 8) % ring_bytes,
                8,
                AccessKind::Read,
                AccessTag::ReceiveMessage,
                &mut server_bd,
            );
        }
        for op in &pending {
            let sthread = server_thread(op.server);
            let msg_bytes = if op.is_insert { 16 } else { 8 };
            hierarchy.access(
                sthread,
                req_addr(op.client, op.server, op.req_slot),
                msg_bytes,
                AccessKind::Read,
                AccessTag::ReceiveMessage,
                &mut server_bd,
            );

            let hashed = mix(op.key);
            let bucket_in_partition = (hashed / params.servers as u64) % buckets_per_partition;
            // Partition-local bucket array lives with the partition's
            // metadata so it belongs to the server's working set.
            let bucket_address = region::PARTITION_META
                + (params.servers as u64 + op.server as u64) * 1_048_576
                + bucket_in_partition * 8;
            hierarchy.access(
                sthread,
                bucket_address,
                8,
                AccessKind::Read,
                AccessTag::ExecuteMessage,
                &mut server_bd,
            );
            hierarchy.access(
                sthread,
                key_addr_header(op.key),
                CACHE_LINE_SIZE,
                if op.is_insert {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                AccessTag::ExecuteMessage,
                &mut server_bd,
            );
            if params.lru {
                hierarchy.access(
                    sthread,
                    partition_meta_addr(op.server as u64),
                    CACHE_LINE_SIZE,
                    AccessKind::Write,
                    AccessTag::ExecuteMessage,
                    &mut server_bd,
                );
                let prev = lru_head[op.server];
                if prev != u64::MAX && prev != op.key {
                    hierarchy.access(
                        sthread,
                        key_addr_header(prev),
                        CACHE_LINE_SIZE,
                        AccessKind::Write,
                        AccessTag::ExecuteMessage,
                        &mut server_bd,
                    );
                }
                lru_head[op.server] = op.key;
            }
            if op.is_insert {
                hierarchy.access(
                    sthread,
                    alloc_meta_addr(op.server as u64),
                    CACHE_LINE_SIZE,
                    AccessKind::Write,
                    AccessTag::ExecuteMessage,
                    &mut server_bd,
                );
            }

            hierarchy.access(
                sthread,
                resp_addr(op.client, op.server, op.resp_slot),
                8,
                AccessKind::Write,
                AccessTag::SendResponse,
                &mut server_bd,
            );
            server_bd.operations += 1;
        }

        // --- Phase C: clients drain responses, touch the data, and queue
        // the follow-up message (Ready for inserts, Decref for lookups).
        for op in &pending {
            hierarchy.access(
                op.client,
                resp_addr(op.client, op.server, op.resp_slot),
                8,
                AccessKind::Read,
                AccessTag::ReceiveResponse,
                &mut client_bd,
            );
            hierarchy.access(
                op.client,
                key_addr_value(op.key, params.value_bytes),
                params.value_bytes,
                if op.is_insert {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                AccessTag::AccessData,
                &mut client_bd,
            );
            let follow_slot = req_cursor[op.lane];
            hierarchy.access(
                op.client,
                req_addr(op.client, op.server, follow_slot),
                8,
                AccessKind::Write,
                AccessTag::SendMessage,
                &mut client_bd,
            );
            req_cursor[op.lane] += 1;
            followups.push((
                server_thread(op.server),
                op.client * params.servers + op.server,
                follow_slot,
            ));
            client_bd.operations += 1;
        }

        remaining -= this_round;
    }

    // Servers drain the final round's follow-ups so every message is
    // accounted for.
    for (sthread, lane, slot) in followups.drain(..) {
        hierarchy.access(
            sthread,
            region::REQUEST_RINGS + (lane as u64) * lane_stride + (slot * 8) % ring_bytes,
            8,
            AccessKind::Read,
            AccessTag::ReceiveMessage,
            &mut server_bd,
        );
    }

    CpHashModelOutput {
        client: client_bd,
        server: server_bd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::AccessTag;

    fn small_params() -> OpModelParams {
        OpModelParams {
            cache: CacheConfig::scaled(16, 2),
            clients: 8,
            servers: 8,
            lock_partitions: 256,
            working_set_bytes: 64 * 1024,
            value_bytes: 8,
            insert_ratio: 0.3,
            lru: true,
            operations: 20_000,
            ring_capacity: 1024,
            seed: 7,
        }
    }

    #[test]
    fn distinct_keys_follow_working_set() {
        let p = small_params();
        assert_eq!(p.distinct_keys(), 8192);
        assert_eq!(p.total_buckets(), 8192);
    }

    #[test]
    fn lockhash_breakdown_has_the_expected_rows() {
        let b = simulate_lockhash(&small_params());
        assert_eq!(b.operations, 20_000);
        for tag in [
            AccessTag::SpinlockAcquire,
            AccessTag::HashTraversal,
            AccessTag::LruUpdate,
            AccessTag::AccessData,
            AccessTag::HashInsert,
        ] {
            assert!(b.row(tag).accesses > 0, "missing accesses for {tag:?}");
        }
        // No message-passing rows in the lock-based design.
        assert_eq!(b.row(AccessTag::SendMessage).accesses, 0);
        assert_eq!(b.row(AccessTag::ReceiveMessage).accesses, 0);
    }

    #[test]
    fn cphash_breakdowns_have_the_expected_rows() {
        let out = simulate_cphash(&small_params());
        assert_eq!(out.client.operations, 20_000);
        for tag in [
            AccessTag::SendMessage,
            AccessTag::ReceiveResponse,
            AccessTag::AccessData,
        ] {
            assert!(out.client.row(tag).accesses > 0, "client missing {tag:?}");
        }
        for tag in [
            AccessTag::ReceiveMessage,
            AccessTag::ExecuteMessage,
            AccessTag::SendResponse,
        ] {
            assert!(out.server.row(tag).accesses > 0, "server missing {tag:?}");
        }
        // The client never touches partition metadata, and the server never
        // spins on locks.
        assert_eq!(out.client.row(AccessTag::SpinlockAcquire).accesses, 0);
        assert_eq!(out.server.row(AccessTag::SpinlockAcquire).accesses, 0);
    }

    #[test]
    fn cphash_misses_fewer_lines_than_lockhash() {
        // The paper's headline: ~3.1 combined misses per op for CPHash
        // (client+server) vs ~7 for LockHash at 1 MB working set.  The
        // model only has to reproduce the ordering and a clear gap.
        let p = small_params();
        let lock = simulate_lockhash(&p);
        let cp = simulate_cphash(&p);
        let lock_total = lock.total_l2_per_op() + lock.total_l3_per_op();
        let cp_total = cp.client.total_l2_per_op()
            + cp.client.total_l3_per_op()
            + cp.server.total_l2_per_op()
            + cp.server.total_l3_per_op();
        assert!(
            lock_total > cp_total,
            "lockhash {lock_total:.2} misses/op should exceed cphash {cp_total:.2}"
        );
    }

    #[test]
    fn cphash_server_execution_is_mostly_local() {
        // The partition metadata belongs to one server thread, so execute-
        // message accesses should overwhelmingly hit the private cache.
        let out = simulate_cphash(&small_params());
        let row = out.server.row(AccessTag::ExecuteMessage);
        let hit_rate = row.private_hits as f64 / row.accesses as f64;
        assert!(hit_rate > 0.5, "server locality too low: {hit_rate:.2}");
    }

    #[test]
    fn message_batching_amortizes_send_misses() {
        // Eight 8-byte messages share a line, so per-op send misses must be
        // well below 1.
        let out = simulate_cphash(&small_params());
        let sends = out.client.row(AccessTag::SendMessage);
        let miss_per_op = (sends.l2_misses + sends.l3_misses) as f64 / out.client.operations as f64;
        assert!(miss_per_op < 1.0, "send misses per op = {miss_per_op:.2}");
    }

    #[test]
    fn lru_flag_controls_lru_traffic() {
        let mut p = small_params();
        p.lru = false;
        let b = simulate_lockhash(&p);
        assert_eq!(b.row(AccessTag::LruUpdate).accesses, 0);
        let out = simulate_cphash(&p);
        // Without LRU the server still executes, just with fewer accesses.
        assert!(out.server.row(AccessTag::ExecuteMessage).accesses > 0);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_panics() {
        let mut p = small_params();
        p.clients = 0;
        let _ = simulate_lockhash(&p);
    }
}
