//! Per-tag miss accounting.

use serde::{Deserialize, Serialize};

use crate::tag::AccessTag;

/// Accesses and misses attributed to one tag.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissCounts {
    /// Simulated memory accesses.
    pub accesses: u64,
    /// Accesses that hit the thread's own private cache.
    pub private_hits: u64,
    /// Accesses that missed the private cache but were satisfied on-socket
    /// (shared L3 or a neighbouring private cache) — the paper's "L2 miss".
    pub l2_misses: u64,
    /// Subset of `l2_misses` that were served by a *peer's private cache*
    /// (a dirty cache-to-cache transfer, more expensive than an L3 hit).
    pub l2_from_peer: u64,
    /// Accesses that had to leave the socket (another socket's cache or
    /// DRAM) — the paper's "L3 miss".
    pub l3_misses: u64,
    /// Subset of `l3_misses` that went all the way to DRAM.
    pub l3_from_dram: u64,
}

impl MissCounts {
    /// Merge another counter block into this one.
    pub fn merge(&mut self, other: &MissCounts) {
        self.accesses += other.accesses;
        self.private_hits += other.private_hits;
        self.l2_misses += other.l2_misses;
        self.l2_from_peer += other.l2_from_peer;
        self.l3_misses += other.l3_misses;
        self.l3_from_dram += other.l3_from_dram;
    }
}

/// A full per-tag breakdown for one logical thread role (e.g. "CPHash
/// client", "CPHash server", "LockHash").
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Counter block per [`AccessTag`], indexed by `AccessTag::index()`.
    rows: Vec<MissCounts>,
    /// Number of hash-table operations the counters cover (for per-op
    /// averages).
    pub operations: u64,
}

impl Breakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Breakdown {
            rows: vec![MissCounts::default(); AccessTag::ALL.len()],
            operations: 0,
        }
    }

    /// Counter block for one tag.
    pub fn row(&self, tag: AccessTag) -> &MissCounts {
        &self.rows[tag.index()]
    }

    /// Mutable counter block for one tag.
    pub fn row_mut(&mut self, tag: AccessTag) -> &mut MissCounts {
        &mut self.rows[tag.index()]
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &Breakdown) {
        for tag in AccessTag::ALL {
            self.rows[tag.index()].merge(other.row(tag));
        }
        self.operations += other.operations;
    }

    /// Totals over every tag.
    pub fn total(&self) -> MissCounts {
        let mut total = MissCounts::default();
        for row in &self.rows {
            total.merge(row);
        }
        total
    }

    /// Average L2 misses per operation for one tag.
    pub fn l2_per_op(&self, tag: AccessTag) -> f64 {
        Self::per_op(self.row(tag).l2_misses, self.operations)
    }

    /// Average L3 misses per operation for one tag.
    pub fn l3_per_op(&self, tag: AccessTag) -> f64 {
        Self::per_op(self.row(tag).l3_misses, self.operations)
    }

    /// Average total L2 misses per operation.
    pub fn total_l2_per_op(&self) -> f64 {
        Self::per_op(self.total().l2_misses, self.operations)
    }

    /// Average total L3 misses per operation.
    pub fn total_l3_per_op(&self) -> f64 {
        Self::per_op(self.total().l3_misses, self.operations)
    }

    fn per_op(count: u64, ops: u64) -> f64 {
        if ops == 0 {
            0.0
        } else {
            count as f64 / ops as f64
        }
    }

    /// Render the breakdown as aligned text rows (tag, L2/op, L3/op),
    /// skipping tags with no recorded accesses — the Figure 7 style table.
    pub fn to_table(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{title:<28} {:>12} {:>12}\n",
            "L2 miss/op", "L3 miss/op"
        ));
        for tag in AccessTag::ALL {
            let row = self.row(tag);
            if row.accesses == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {:<26} {:>12.2} {:>12.2}\n",
                tag.label(),
                self.l2_per_op(tag),
                self.l3_per_op(tag)
            ));
        }
        out.push_str(&format!(
            "  {:<26} {:>12.2} {:>12.2}\n",
            "Total",
            self.total_l2_per_op(),
            self.total_l3_per_op()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_accumulate_and_merge() {
        let mut b = Breakdown::new();
        b.operations = 10;
        b.row_mut(AccessTag::HashTraversal).accesses = 20;
        b.row_mut(AccessTag::HashTraversal).l2_misses = 10;
        b.row_mut(AccessTag::HashTraversal).l3_misses = 5;
        assert_eq!(b.l2_per_op(AccessTag::HashTraversal), 1.0);
        assert_eq!(b.l3_per_op(AccessTag::HashTraversal), 0.5);

        let mut b2 = Breakdown::new();
        b2.operations = 10;
        b2.row_mut(AccessTag::SpinlockAcquire).l3_misses = 20;
        b2.row_mut(AccessTag::SpinlockAcquire).accesses = 20;
        b.merge(&b2);
        assert_eq!(b.operations, 20);
        assert_eq!(b.total().l3_misses, 25);
        assert!((b.total_l3_per_op() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_divides_safely() {
        let b = Breakdown::new();
        assert_eq!(b.total_l2_per_op(), 0.0);
        assert_eq!(b.l3_per_op(AccessTag::Other), 0.0);
    }

    #[test]
    fn table_includes_only_active_rows() {
        let mut b = Breakdown::new();
        b.operations = 4;
        b.row_mut(AccessTag::SendMessage).accesses = 4;
        b.row_mut(AccessTag::SendMessage).l2_misses = 2;
        let table = b.to_table("client");
        assert!(table.contains("Send messages"));
        assert!(!table.contains("Spinlock acquire"));
        assert!(table.contains("Total"));
    }
}
