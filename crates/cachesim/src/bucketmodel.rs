//! Per-probe cache-line cost of the two bucket layouts.
//!
//! The tagged inline bucket layout (`cphash_hashcore::BucketLayout::Inline`)
//! exists for one reason: under the chained layout the staged pipeline's
//! prefetch pass must *read* the bucket head to learn the first element's
//! address — a demand DRAM miss that serializes the staging loop — and a
//! lookup then walks one element-header line per chain position.  Packing
//! the first [`BucketProbeModel::inline_slots`] entries as 8-bit key tags
//! plus element refs into the bucket's own 64-byte line makes staging pure
//! address arithmetic (the hint needs no table read), lets tag mismatches
//! reject without touching the element arena at all, and resolves tag hits
//! with exactly one further element line.
//!
//! This module quantifies that difference analytically, the same way
//! [`crate::costmodel`] turns miss counts into cycles: given a load factor
//! (expected elements per bucket, Poisson-distributed occupancy), a lookup
//! hit rate, and the line geometry, it reports the expected number of
//! table cache lines a probe touches under each layout — split into lines
//! whose address is known during staging (prefetchable, so their latency
//! overlaps across the batch) and lines that remain *exposed* (demand
//! reads the pipeline cannot hide).  The ratio of exposed lines is the
//! model's prediction for the inline layout's speedup on DRAM-resident
//! working sets, and `ablate_prefetch` prints it next to the measured
//! numbers so the claim is falsifiable.

use serde::{Deserialize, Serialize};

/// Analytic model of one lookup probe's cache-line traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BucketProbeModel {
    /// Expected elements per bucket (the table's load factor); bucket
    /// occupancy is modelled as Poisson with this mean.
    pub load_factor: f64,
    /// Fraction of lookups that find their key.
    pub hit_rate: f64,
    /// Tagged entries packed into the bucket's own cache line
    /// (`cphash_hashcore::INLINE_SLOTS`; 7 for 64-byte lines).
    pub inline_slots: usize,
    /// Width of the per-entry key tag in bits (8: one byte per slot).
    pub tag_bits: u32,
}

impl Default for BucketProbeModel {
    fn default() -> Self {
        // The fig05/ablation regime: ~1 element per bucket, 95% lookup
        // hits, the 64-byte line geometry.
        BucketProbeModel {
            load_factor: 1.0,
            hit_rate: 0.95,
            inline_slots: 7,
            tag_bits: 8,
        }
    }
}

/// Expected cache-line traffic of one probe under one layout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeCost {
    /// Table lines the *staging* pass must demand-read before it can issue
    /// its prefetch (serialized: each read stalls the staging loop).
    pub staged_lines: f64,
    /// Expected table lines the probe touches at execute time (bucket
    /// metadata plus element headers; value lines excluded).
    pub probe_lines: f64,
    /// Of `probe_lines`, how many have addresses known during staging and
    /// are therefore covered by the batch prefetch (latency overlapped).
    pub prefetched_lines: f64,
    /// Lines whose latency the pipeline cannot hide: staging demand reads
    /// plus execute-time reads that were not prefetchable.
    pub exposed_lines: f64,
}

impl BucketProbeModel {
    /// Poisson tail: expected number of elements *beyond* the first
    /// `inline_slots` in a bucket, i.e. the mean overflow-chain length.
    fn expected_overflow(&self) -> f64 {
        let a = self.load_factor.max(0.0);
        let n = self.inline_slots;
        // E[(X - n)^+] for X ~ Poisson(a), summed until the pmf vanishes.
        let mut pmf = (-a).exp(); // P(X = 0)
        let mut sum = 0.0;
        for k in 1..(n + 64) {
            pmf *= a / k as f64;
            if k > n {
                sum += (k - n) as f64 * pmf;
            }
        }
        sum
    }

    /// Probability a bucket holds at least one element.
    fn occupied(&self) -> f64 {
        1.0 - (-self.load_factor.max(0.0)).exp()
    }

    /// Probe cost under the chained layout (`BucketLayout::Chain`): a bare
    /// head array, every element reached through its header line.
    pub fn chain(&self) -> ProbeCost {
        let a = self.load_factor.max(0.0);
        let h = self.hit_rate.clamp(0.0, 1.0);
        // Staging must read the head line to learn the first element's
        // address (and to skip empty buckets) — one serialized demand read
        // per operation, which is the layout's hidden cost.
        let staged_lines = 1.0;
        // A hit walks to the key's chain position (uniform ⇒ half the
        // chain on average, at least one header); a miss walks the whole
        // chain.
        let hit_walk = ((a + 1.0) / 2.0).max(1.0);
        let probe_lines = h * hit_walk + (1.0 - h) * a;
        // The staging pass prefetches the head element's line whenever the
        // chain is non-empty; deeper elements are discovered too late.
        let prefetched_lines = self.occupied().min(probe_lines);
        ProbeCost {
            staged_lines,
            probe_lines,
            prefetched_lines,
            exposed_lines: staged_lines + probe_lines - prefetched_lines,
        }
    }

    /// Probe cost under the tagged inline layout (`BucketLayout::Inline`).
    pub fn inline(&self) -> ProbeCost {
        let a = self.load_factor.max(0.0);
        let h = self.hit_rate.clamp(0.0, 1.0);
        // Staging is pure address arithmetic: bucket index → line address.
        let staged_lines = 0.0;
        // Every probe reads the bucket line.  A hit confirms the tag match
        // with one element line.  A miss touches an element line only on a
        // tag false positive (each of the ~a occupied slots matches a
        // random tag with probability 2^-tag_bits), and walks the overflow
        // chain only past the inline capacity (Poisson tail).
        let false_positives = a / (1u64 << self.tag_bits) as f64;
        let overflow = self.expected_overflow();
        let probe_lines = 1.0 + h * 1.0 + (1.0 - h) * false_positives + overflow;
        // The bucket line itself is always prefetchable; the element line
        // behind a tag hit is discovered only after the line is read.
        let prefetched_lines = 1.0;
        ProbeCost {
            staged_lines,
            probe_lines,
            prefetched_lines,
            exposed_lines: staged_lines + probe_lines - prefetched_lines,
        }
    }

    /// Predicted speedup of the inline layout over the chained layout on a
    /// DRAM-resident working set: the ratio of exposed (unhidden) lines
    /// per probe.  > 1 means the inline layout wins.
    pub fn exposed_miss_reduction(&self) -> f64 {
        let chain = self.chain().exposed_lines;
        let inline = self.inline().exposed_lines;
        if inline <= 0.0 {
            return f64::INFINITY;
        }
        chain / inline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_regime_predicts_the_ablation_gate() {
        // α = 1, 95% hits, N = 7: the model must predict at least the
        // 1.1× exposed-miss reduction `ablate_prefetch --strict` gates on.
        let m = BucketProbeModel::default();
        let chain = m.chain();
        let inline = m.inline();
        assert!(chain.exposed_lines > inline.exposed_lines);
        assert!(
            m.exposed_miss_reduction() > 1.1,
            "predicted reduction {:.2} too small (chain {:.3} vs inline {:.3})",
            m.exposed_miss_reduction(),
            chain.exposed_lines,
            inline.exposed_lines
        );
    }

    #[test]
    fn inline_staging_reads_nothing() {
        let m = BucketProbeModel::default();
        assert_eq!(m.inline().staged_lines, 0.0);
        assert_eq!(m.chain().staged_lines, 1.0);
    }

    #[test]
    fn overflow_tail_is_negligible_at_paper_load_factors() {
        // With ~1 element per bucket and 7 inline slots, overflowing a
        // bucket needs 8+ keys to collide: essentially never.
        let m = BucketProbeModel::default();
        assert!(m.expected_overflow() < 1e-3);
        // Past the inline capacity the tail grows quickly.
        let crowded = BucketProbeModel {
            load_factor: 12.0,
            ..m
        };
        assert!(crowded.expected_overflow() > 4.0);
    }

    #[test]
    fn tag_misses_reject_without_element_reads() {
        // An all-miss workload under the inline layout touches almost only
        // the bucket line: false positives are ~α/256 per probe.
        let m = BucketProbeModel {
            hit_rate: 0.0,
            ..BucketProbeModel::default()
        };
        let cost = m.inline();
        assert!(cost.probe_lines < 1.01, "probe lines {}", cost.probe_lines);
        // The chained layout still walks the whole chain on a miss.
        assert!(m.chain().probe_lines > 0.9);
    }

    #[test]
    fn reduction_grows_with_chain_length() {
        let short = BucketProbeModel {
            load_factor: 0.5,
            ..BucketProbeModel::default()
        };
        let long = BucketProbeModel {
            load_factor: 4.0,
            ..BucketProbeModel::default()
        };
        assert!(long.exposed_miss_reduction() > short.exposed_miss_reduction());
    }

    #[test]
    fn degenerate_inputs_stay_finite() {
        let m = BucketProbeModel {
            load_factor: 0.0,
            hit_rate: 0.0,
            ..BucketProbeModel::default()
        };
        assert!(m.chain().exposed_lines.is_finite());
        assert!(m.inline().exposed_lines.is_finite());
        assert!(m.exposed_miss_reduction().is_finite() || m.inline().exposed_lines <= 0.0);
    }
}
