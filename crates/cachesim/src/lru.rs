//! A bounded LRU set of cache lines.
//!
//! Each modelled cache (private or L3) is a capacity-bounded set of
//! [`LineId`]s with least-recently-used replacement.  Implemented as a
//! hash map from line to timestamp plus an ordered map from timestamp to
//! line, giving `O(log n)` touch/evict without unsafe code.

use std::collections::{BTreeMap, HashMap};

use cphash_cacheline::geometry::LineId;

/// A fixed-capacity set of cache lines with LRU replacement.
#[derive(Debug, Clone)]
pub struct LruSet {
    capacity: usize,
    stamp: u64,
    by_line: HashMap<LineId, u64>,
    by_stamp: BTreeMap<u64, LineId>,
}

impl LruSet {
    /// Create a set holding at most `capacity` lines.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruSet {
            capacity,
            stamp: 0,
            by_line: HashMap::with_capacity(capacity.min(1 << 20)),
            by_stamp: BTreeMap::new(),
        }
    }

    /// Number of lines currently resident.
    pub fn len(&self) -> usize {
        self.by_line.len()
    }

    /// Returns `true` when no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.by_line.is_empty()
    }

    /// Maximum number of resident lines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Is `line` resident? Does not update recency.
    pub fn contains(&self, line: LineId) -> bool {
        self.by_line.contains_key(&line)
    }

    /// Mark `line` as most recently used if resident. Returns whether it was
    /// resident.
    pub fn touch(&mut self, line: LineId) -> bool {
        if let Some(old) = self.by_line.get_mut(&line) {
            self.by_stamp.remove(old);
            self.stamp += 1;
            *old = self.stamp;
            self.by_stamp.insert(self.stamp, line);
            true
        } else {
            false
        }
    }

    /// Insert `line` as most recently used, evicting the least recently used
    /// line if the set is full. Returns the evicted line, if any.
    pub fn insert(&mut self, line: LineId) -> Option<LineId> {
        if self.touch(line) {
            return None;
        }
        let mut evicted = None;
        if self.by_line.len() >= self.capacity {
            if let Some((&oldest_stamp, &oldest_line)) = self.by_stamp.iter().next() {
                self.by_stamp.remove(&oldest_stamp);
                self.by_line.remove(&oldest_line);
                evicted = Some(oldest_line);
            }
        }
        self.stamp += 1;
        self.by_line.insert(line, self.stamp);
        self.by_stamp.insert(self.stamp, line);
        evicted
    }

    /// Remove `line` from the set (invalidation). Returns whether it was
    /// resident.
    pub fn remove(&mut self, line: LineId) -> bool {
        if let Some(stamp) = self.by_line.remove(&line) {
            self.by_stamp.remove(&stamp);
            true
        } else {
            false
        }
    }

    /// Drop every resident line.
    pub fn clear(&mut self) {
        self.by_line.clear();
        self.by_stamp.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineId {
        LineId(n)
    }

    #[test]
    fn insert_and_contains() {
        let mut s = LruSet::new(2);
        assert!(s.is_empty());
        assert_eq!(s.insert(l(1)), None);
        assert_eq!(s.insert(l(2)), None);
        assert!(s.contains(l(1)));
        assert!(s.contains(l(2)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.capacity(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut s = LruSet::new(2);
        s.insert(l(1));
        s.insert(l(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(s.touch(l(1)));
        assert_eq!(s.insert(l(3)), Some(l(2)));
        assert!(s.contains(l(1)));
        assert!(s.contains(l(3)));
        assert!(!s.contains(l(2)));
    }

    #[test]
    fn reinserting_resident_line_evicts_nothing() {
        let mut s = LruSet::new(2);
        s.insert(l(1));
        s.insert(l(2));
        assert_eq!(s.insert(l(1)), None);
        assert_eq!(s.len(), 2);
        // And line 2 is now the LRU victim.
        assert_eq!(s.insert(l(3)), Some(l(2)));
    }

    #[test]
    fn remove_and_clear() {
        let mut s = LruSet::new(4);
        s.insert(l(1));
        s.insert(l(2));
        assert!(s.remove(l(1)));
        assert!(!s.remove(l(1)));
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.touch(l(2)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = LruSet::new(0);
    }

    #[test]
    fn heavy_use_respects_capacity() {
        let mut s = LruSet::new(64);
        for i in 0..10_000u64 {
            s.insert(l(i));
            assert!(s.len() <= 64);
        }
        // The most recent 64 lines are resident.
        for i in 10_000 - 64..10_000 {
            assert!(s.contains(l(i)), "line {i} should be resident");
        }
    }
}
