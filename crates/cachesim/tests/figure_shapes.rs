//! Shape tests for the cache model at (scaled-down) paper configurations:
//! the qualitative claims behind Figures 6 and 7 must fall out of the model
//! for a range of machine shapes and workload parameters, not just the one
//! configuration the unit tests pin down.

use cphash_cachesim::opmodel::{simulate_cphash, simulate_lockhash, OpModelParams};
use cphash_cachesim::{AccessTag, CacheConfig, CostModel};

fn params(hw_threads: usize, sockets: usize, working_set_kb: usize) -> OpModelParams {
    OpModelParams {
        cache: CacheConfig::scaled(hw_threads, sockets),
        clients: hw_threads / 2,
        servers: hw_threads / 2,
        lock_partitions: 1024,
        working_set_bytes: working_set_kb * 1024,
        value_bytes: 8,
        insert_ratio: 0.3,
        lru: true,
        operations: 30_000,
        ring_capacity: 1024,
        seed: 11,
    }
}

#[test]
fn lockhash_pays_for_locks_and_lru_on_every_machine_shape() {
    for (hw, sockets) in [(8, 1), (16, 2), (32, 4)] {
        let breakdown = simulate_lockhash(&params(hw, sockets, 1024));
        // The lock line bounces: roughly one coherence miss per operation
        // split between the acquire and the (private-hit) release.
        let lock_row = breakdown.row(AccessTag::SpinlockAcquire);
        let lock_misses =
            (lock_row.l2_misses + lock_row.l3_misses) as f64 / breakdown.operations as f64;
        assert!(
            lock_misses > 0.3,
            "({hw},{sockets}): lock misses/op {lock_misses:.2} too low — the lock should bounce"
        );
        // LRU maintenance and traversal are the dominant cost, as in Fig. 7.
        let lru = breakdown.row(AccessTag::LruUpdate);
        let traversal = breakdown.row(AccessTag::HashTraversal);
        assert!(lru.l3_misses + traversal.l3_misses > lock_row.l3_misses);
    }
}

#[test]
fn cphash_beats_lockhash_when_partitions_fit_in_private_caches() {
    // 1 MB working set spread over the servers' private caches — the Fig. 5
    // sweet spot.
    for (hw, sockets) in [(16, 2), (32, 4)] {
        let p = params(hw, sockets, 1024);
        let lock = simulate_lockhash(&p);
        let cp = simulate_cphash(&p);
        let lock_total = lock.total_l2_per_op() + lock.total_l3_per_op();
        let cp_total = cp.client.total_l2_per_op()
            + cp.client.total_l3_per_op()
            + cp.server.total_l2_per_op()
            + cp.server.total_l3_per_op();
        assert!(
            lock_total > cp_total,
            "({hw},{sockets}): lockhash {lock_total:.2} vs cphash {cp_total:.2} misses/op"
        );
        // And the server side is the locality story: most of its partition
        // accesses hit its own cache.
        let exec = cp.server.row(AccessTag::ExecuteMessage);
        assert!(exec.private_hits as f64 / exec.accesses as f64 > 0.4);
    }
}

#[test]
fn cphash_advantage_shrinks_without_lru() {
    let with_lru = params(16, 2, 1024);
    let without_lru = OpModelParams {
        lru: false,
        ..with_lru
    };
    let gap = |p: &OpModelParams| {
        let lock = simulate_lockhash(p);
        let cp = simulate_cphash(p);
        let lock_total = lock.total_l2_per_op() + lock.total_l3_per_op();
        let cp_total = cp.client.total_l2_per_op()
            + cp.client.total_l3_per_op()
            + cp.server.total_l2_per_op()
            + cp.server.total_l3_per_op();
        lock_total - cp_total
    };
    let gap_lru = gap(&with_lru);
    let gap_random = gap(&without_lru);
    assert!(
        gap_lru > gap_random,
        "removing LRU maintenance should narrow the miss gap (Fig. 8): {gap_lru:.2} vs {gap_random:.2}"
    );
}

#[test]
fn bigger_working_sets_mean_more_misses_for_both_designs() {
    let small = params(16, 2, 256);
    let large = params(16, 2, 16 * 1024);
    let lock_small = simulate_lockhash(&small).total_l3_per_op();
    let lock_large = simulate_lockhash(&large).total_l3_per_op();
    assert!(lock_large >= lock_small);
    let cp_small = simulate_cphash(&small);
    let cp_large = simulate_cphash(&large);
    assert!(
        cp_large.server.total_l3_per_op() >= cp_small.server.total_l3_per_op(),
        "a working set that overflows the private caches must cost the servers more"
    );
}

#[test]
fn cost_model_scales_miss_cost_with_offsocket_load() {
    let p = params(32, 4, 1024);
    let lock = simulate_lockhash(&p);
    let cp = simulate_cphash(&p);
    let cost = CostModel::default();
    let lock_est = cost.estimate(&lock.total(), lock.operations, 32);
    let cp_est = cost.estimate(&cp.client.total(), cp.client.operations, 16);
    assert!(lock_est.cycles_per_op > cp_est.cycles_per_op);
    assert!(
        lock_est.l3_miss_cost > cp_est.l3_miss_cost,
        "LockHash's heavier off-socket traffic must make each of its misses dearer"
    );
}
