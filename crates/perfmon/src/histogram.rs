//! Log-bucketed latency histograms.
//!
//! Used by the key/value server benchmarks to report request-latency
//! percentiles next to the throughput numbers (the paper only reports
//! throughput; percentiles are extra diagnostic output).

/// A histogram with logarithmically spaced buckets (powers of two), suitable
/// for latencies spanning nanoseconds to seconds.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// `buckets[i]` counts samples whose value has `i` significant bits,
    /// i.e. value in `[2^(i-1), 2^i)`.
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// Record one sample (any unit; nanoseconds or cycles by convention).
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest sample seen (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Approximate value at a percentile in `[0, 100]`: the upper bound of
    /// the bucket containing that quantile.
    pub fn percentile(&self, pct: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((pct / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return match i {
                    0 => 0,
                    // The top bucket's bound would be 2^64; saturate instead
                    // of overflowing the shift.
                    64 => u64::MAX,
                    _ => 1u64 << i,
                };
            }
        }
        self.max
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Iterate the occupied buckets as `(upper_bound, count)` pairs in
    /// ascending order.  The bound follows the same convention as
    /// [`LatencyHistogram::percentile`]: bucket `i` holds values with `i`
    /// significant bits and exports `2^i` as its bound (`0` for the zero
    /// bucket, `u64::MAX` for the top bucket) — every value in the bucket
    /// is `<=` the bound, which is what Prometheus `le` bounds require.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let upper = match i {
                    0 => 0,
                    64 => u64::MAX,
                    _ => 1u64 << i,
                };
                (upper, c)
            })
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 2, 4, 8, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert!((h.mean() - (1 + 2 + 4 + 8 + 100 + 1000) as f64 / 6.0).abs() < 1e-9);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn percentiles_are_ordered_and_bracket_the_data() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        let p100 = h.percentile(100.0);
        assert!(p50 <= p99 && p99 <= p100);
        // The median of 1..=1000 is ~500; its bucket upper bound is 512.
        assert_eq!(p50, 512);
        assert!(p100 >= 1000);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.min(), 10);
    }

    #[test]
    fn merging_an_empty_histogram_changes_nothing() {
        let mut a = LatencyHistogram::new();
        a.record(7);
        let before = (a.count(), a.sum(), a.min(), a.max());
        a.merge(&LatencyHistogram::new());
        assert_eq!((a.count(), a.sum(), a.min(), a.max()), before);
        // And empty-into-empty stays empty (min must not leak u64::MAX).
        let mut e = LatencyHistogram::new();
        e.merge(&LatencyHistogram::new());
        assert_eq!(e.count(), 0);
        assert_eq!(e.min(), 0);
        assert_eq!(e.percentile(99.9), 0);
    }

    #[test]
    fn single_sample_percentiles_all_land_in_its_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(300); // 9 significant bits -> bucket upper bound 512
        for pct in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(pct), 512, "pct {pct}");
        }
        assert_eq!(h.min(), 300);
        assert_eq!(h.max(), 300);
        assert_eq!(h.sum(), 300);
    }

    #[test]
    fn cross_bucket_merge_matches_recording_into_one() {
        let samples_a = [0u64, 1, 3, 900, 70_000];
        let samples_b = [2u64, 511, 512, 1 << 40, u64::MAX];
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for &v in &samples_a {
            a.record(v);
            combined.record(v);
        }
        for &v in &samples_b {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.sum(), combined.sum());
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
        let merged: Vec<_> = a.nonzero_buckets().collect();
        assert_eq!(merged, combined.nonzero_buckets().collect::<Vec<_>>());
        for pct in [1.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            assert_eq!(a.percentile(pct), combined.percentile(pct), "pct {pct}");
        }
    }

    #[test]
    fn nonzero_buckets_cover_every_sample_with_valid_bounds() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 2, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        let total: u64 = buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, h.count());
        // Bounds ascend strictly and the top sample maps to u64::MAX.
        for pair in buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
        assert_eq!(buckets.first().unwrap().0, 0);
        assert_eq!(buckets.last().unwrap().0, u64::MAX);
    }
}
