//! Zero-cost-when-off, cycle-stamped stage tracing for the operation hot
//! path.
//!
//! The paper's profiling library (§5) attributed cycles to the phases of
//! the server loop with `rdtsc`; this module is the runtime equivalent.
//! Each traced thread owns a fixed-size ring buffer of [`TraceEvent`]s plus
//! one [`LatencyHistogram`] per [`TraceStage`], covering the lifecycle of a
//! batch of operations:
//!
//! ```text
//! ring-enqueue → drain → prepare → prefetch → execute → reply-publish
//! ```
//!
//! `ring-enqueue` is stamped on the client side (publishing request words
//! into the message ring); the rest on the server side (pulling a lane
//! batch, the staged pipeline's two passes, and pushing responses).
//!
//! **Cost model.**  Tracing is off unless the `CPHASH_TRACE` environment
//! variable (or `cpserverd --trace`, via [`set_trace_enabled`]) turns it
//! on.  When off, a [`StageSpan`] is one relaxed atomic load and a branch
//! per *batch* (not per operation) — the `ablate_prefetch --strict` gate
//! holds this to ≤ 2 % of hot-loop throughput.  When on, each span costs
//! two timestamp reads plus one uncontended mutex'd ring push.
//!
//! Stamps are raw [`cycles_now`] cycles; convert with
//! [`crate::estimate_cycles_per_second`] when wall-clock units are needed.

use cphash_sync::atomic::plain::{AtomicBool, AtomicUsize, Ordering};
use std::cell::OnceCell;
use std::sync::{Arc, Mutex, Once};

use crate::cycles::cycles_now;
use crate::histogram::LatencyHistogram;

/// Pipeline stages an operation batch moves through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceStage {
    /// Client side: publishing request words into a server's message ring.
    RingEnqueue = 0,
    /// Server side: pulling a batch of requests off a client lane.
    Drain = 1,
    /// Server side: hashing and staging a batch (no table memory touched).
    Prepare = 2,
    /// Server side: issuing software prefetches for the staged buckets.
    Prefetch = 3,
    /// Server side: executing the staged operations against the partition.
    Execute = 4,
    /// Server side: publishing the batch's responses to the reply ring.
    ReplyPublish = 5,
}

/// Number of [`TraceStage`] variants.
pub const STAGE_COUNT: usize = 6;

/// Every stage, in pipeline order.
pub const ALL_STAGES: [TraceStage; STAGE_COUNT] = [
    TraceStage::RingEnqueue,
    TraceStage::Drain,
    TraceStage::Prepare,
    TraceStage::Prefetch,
    TraceStage::Execute,
    TraceStage::ReplyPublish,
];

impl TraceStage {
    /// Stable lowercase name (used as the Prometheus `stage` label).
    pub fn name(self) -> &'static str {
        match self {
            TraceStage::RingEnqueue => "ring_enqueue",
            TraceStage::Drain => "drain",
            TraceStage::Prepare => "prepare",
            TraceStage::Prefetch => "prefetch",
            TraceStage::Execute => "execute",
            TraceStage::ReplyPublish => "reply_publish",
        }
    }
}

/// One cycle-stamped ring entry: a stage executed over `ops` operations.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Which stage.
    pub stage: TraceStage,
    /// [`cycles_now`] stamp when the stage began.
    pub start: u64,
    /// Cycles the stage took.
    pub cycles: u64,
    /// Operations the stage covered (batch size).
    pub ops: u32,
}

/// Default per-thread ring capacity, in events.
pub const DEFAULT_RING_CAPACITY: usize = 16 * 1024;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);
static THREADS: Mutex<Vec<Arc<ThreadRing>>> = Mutex::new(Vec::new());

thread_local! {
    static RING: OnceCell<Arc<ThreadRing>> = const { OnceCell::new() };
}

/// Read `CPHASH_TRACE` / `CPHASH_TRACE_RING` exactly once (before any
/// explicit [`set_trace_enabled`] / [`set_ring_capacity`] can be
/// overridden by them).
#[inline]
fn env_init() {
    ENV_INIT.call_once(|| {
        if let Ok(v) = std::env::var("CPHASH_TRACE") {
            let off = matches!(v.as_str(), "" | "0" | "false" | "off");
            if !off {
                ENABLED.store(true, Ordering::Relaxed); // relaxed: diagnostic gauge; guards no data
            }
        }
        if let Ok(v) = std::env::var("CPHASH_TRACE_RING") {
            if let Ok(events) = v.parse::<usize>() {
                RING_CAPACITY.store(events.max(1), Ordering::Relaxed); // relaxed: diagnostic gauge; guards no data
            }
        }
    });
}

/// Is stage tracing currently on?
#[inline]
pub fn trace_enabled() -> bool {
    env_init();
    ENABLED.load(Ordering::Relaxed) // relaxed: diagnostic snapshot; tearing across counters is fine
}

/// Turn tracing on or off at runtime (`cpserverd --trace`, tests).
pub fn set_trace_enabled(on: bool) {
    env_init();
    ENABLED.store(on, Ordering::Relaxed); // relaxed: diagnostic gauge; guards no data
}

/// Set the ring capacity (in events) used by threads that start tracing
/// *after* this call; existing rings keep their size.
pub fn set_ring_capacity(events: usize) {
    RING_CAPACITY.store(events.max(1), Ordering::Relaxed); // relaxed: diagnostic gauge; guards no data
}

/// An in-flight stage measurement.
///
/// [`StageSpan::begin`] stamps the cycle counter only when tracing is on;
/// [`StageSpan::finish`] records the event into the calling thread's ring.
/// Dropping a span without finishing records nothing.
#[derive(Debug, Clone, Copy)]
#[must_use = "a span only records when finished"]
pub struct StageSpan {
    stage: TraceStage,
    start: u64,
}

/// Sentinel start value meaning "tracing was off at begin".
const DISABLED: u64 = u64::MAX;

impl StageSpan {
    /// Start measuring a stage (a no-op stamp when tracing is off).
    #[inline]
    pub fn begin(stage: TraceStage) -> StageSpan {
        StageSpan {
            stage,
            start: if trace_enabled() {
                cycles_now()
            } else {
                DISABLED
            },
        }
    }

    /// Finish the stage, attributing it to `ops` operations.
    #[inline]
    pub fn finish(self, ops: u32) {
        if self.start != DISABLED {
            let cycles = cycles_now().saturating_sub(self.start);
            record(TraceEvent {
                stage: self.stage,
                start: self.start,
                cycles,
                ops,
            });
        }
    }
}

/// One thread's trace state.
struct ThreadRing {
    name: String,
    inner: Mutex<RingInner>,
}

struct RingInner {
    /// Fixed-capacity event ring (grows to capacity, then wraps).
    events: Vec<TraceEvent>,
    /// Next write slot once the ring is full.
    next: usize,
    /// Events ever recorded (so wrap-around is observable).
    total: u64,
    /// Per-stage cycle histograms.
    stages: Vec<LatencyHistogram>,
    capacity: usize,
}

impl ThreadRing {
    fn record(&self, event: TraceEvent) {
        let mut inner = self.inner.lock().expect("trace ring poisoned");
        if inner.events.len() < inner.capacity {
            inner.events.push(event);
        } else {
            let slot = inner.next;
            inner.events[slot] = event;
        }
        inner.next = (inner.next + 1) % inner.capacity;
        inner.total += 1;
        inner.stages[event.stage as usize].record(event.cycles);
    }
}

/// Register the calling thread's ring on first use.
fn register_current_thread() -> Arc<ThreadRing> {
    let name = std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| {
            static ANON: AtomicUsize = AtomicUsize::new(0);
            format!("thread-{}", ANON.fetch_add(1, Ordering::Relaxed)) // relaxed: monotonic diagnostic counter; guards no data
        });
    let capacity = RING_CAPACITY.load(Ordering::Relaxed); // relaxed: diagnostic snapshot; tearing across counters is fine
    let ring = Arc::new(ThreadRing {
        name,
        inner: Mutex::new(RingInner {
            events: Vec::with_capacity(capacity.min(4096)),
            next: 0,
            total: 0,
            stages: vec![LatencyHistogram::new(); STAGE_COUNT],
            capacity,
        }),
    });
    THREADS
        .lock()
        .expect("trace thread registry poisoned")
        .push(Arc::clone(&ring));
    ring
}

#[inline]
fn record(event: TraceEvent) {
    RING.with(|cell| {
        cell.get_or_init(register_current_thread).record(event);
    });
}

/// Per-thread trace state flattened for reporting.
#[derive(Debug, Clone)]
pub struct ThreadTrace {
    /// The traced thread's name.
    pub name: String,
    /// Events ever recorded by this thread (≥ `events.len()` after wrap).
    pub total: u64,
    /// The retained events, oldest first.
    pub events: Vec<TraceEvent>,
}

/// A point-in-time view of every traced thread — the dumpable event log
/// plus per-stage latency histograms merged across threads.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Per-stage cycle histograms (pipeline order, one per
    /// [`ALL_STAGES`] entry).
    pub stages: Vec<(TraceStage, LatencyHistogram)>,
    /// Per-thread retained events.
    pub threads: Vec<ThreadTrace>,
}

impl TraceReport {
    /// Events ever recorded across all threads.
    pub fn total_events(&self) -> u64 {
        self.threads.iter().map(|t| t.total).sum()
    }

    /// The merged histogram for one stage.
    pub fn stage(&self, stage: TraceStage) -> &LatencyHistogram {
        &self.stages[stage as usize].1
    }

    /// Render a per-stage summary table (cycles per batch).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace: {} events across {} threads\n",
            self.total_events(),
            self.threads.len()
        ));
        out.push_str(&format!(
            "{:<14} {:>10} {:>12} {:>12} {:>12}\n",
            "stage", "batches", "mean cy", "p50 cy", "p99 cy"
        ));
        for (stage, hist) in &self.stages {
            if hist.count() == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<14} {:>10} {:>12.0} {:>12} {:>12}\n",
                stage.name(),
                hist.count(),
                hist.mean(),
                hist.percentile(50.0),
                hist.percentile(99.0)
            ));
        }
        out
    }
}

/// Snapshot every traced thread: merged per-stage histograms plus up to
/// `max_events_per_thread` most recent events per thread, oldest first.
pub fn snapshot(max_events_per_thread: usize) -> TraceReport {
    let threads = THREADS.lock().expect("trace thread registry poisoned");
    let mut stages = ALL_STAGES
        .iter()
        .map(|&s| (s, LatencyHistogram::new()))
        .collect::<Vec<_>>();
    let mut out_threads = Vec::with_capacity(threads.len());
    for ring in threads.iter() {
        let inner = ring.inner.lock().expect("trace ring poisoned");
        for (slot, hist) in inner.stages.iter().enumerate() {
            stages[slot].1.merge(hist);
        }
        // Reconstruct oldest→newest order: once wrapped, `next` points at
        // the oldest retained event.
        let mut events = Vec::with_capacity(inner.events.len().min(max_events_per_thread));
        let wrapped = inner.events.len() == inner.capacity && inner.total > inner.capacity as u64;
        let ordered = if wrapped {
            inner.events[inner.next..]
                .iter()
                .chain(inner.events[..inner.next].iter())
                .copied()
                .collect::<Vec<_>>()
        } else {
            inner.events.clone()
        };
        let skip = ordered.len().saturating_sub(max_events_per_thread);
        events.extend(ordered.into_iter().skip(skip));
        out_threads.push(ThreadTrace {
            name: ring.name.clone(),
            total: inner.total,
            events,
        });
    }
    TraceReport {
        stages,
        threads: out_threads,
    }
}

/// The merged cycle histogram for one stage across all traced threads —
/// the non-destructive sampler the metrics registry exposes per stage.
pub fn stage_histogram(stage: TraceStage) -> LatencyHistogram {
    let threads = THREADS.lock().expect("trace thread registry poisoned");
    let mut merged = LatencyHistogram::new();
    for ring in threads.iter() {
        let inner = ring.inner.lock().expect("trace ring poisoned");
        merged.merge(&inner.stages[stage as usize]);
    }
    merged
}

/// Clear every thread's ring and histograms (benchmarks, tests).  Threads
/// keep their registration; capacity is unchanged.
pub fn reset() {
    let threads = THREADS.lock().expect("trace thread registry poisoned");
    for ring in threads.iter() {
        let mut inner = ring.inner.lock().expect("trace ring poisoned");
        inner.events.clear();
        inner.next = 0;
        inner.total = 0;
        for hist in inner.stages.iter_mut() {
            *hist = LatencyHistogram::new();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing state (enable flag, ring capacity, thread registry) is
    /// process-global; serialize the tests that mutate it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn test_guard() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Run `body` on a fresh named thread with tracing on, returning that
    /// thread's [`ThreadTrace`].  Global trace state is shared across the
    /// test binary, so each test filters by its own unique thread name.
    fn traced_thread(name: &str, body: impl FnOnce() + Send + 'static) -> ThreadTrace {
        set_trace_enabled(true);
        std::thread::Builder::new()
            .name(name.to_string())
            .spawn(body)
            .unwrap()
            .join()
            .unwrap();
        let report = snapshot(usize::MAX);
        report
            .threads
            .into_iter()
            .find(|t| t.name == name)
            .expect("traced thread registered")
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = test_guard();
        set_trace_enabled(false);
        let span = StageSpan::begin(TraceStage::Execute);
        span.finish(64);
        // The current thread never traced, so it must not appear.
        let report = snapshot(16);
        assert!(report
            .threads
            .iter()
            .all(|t| t.name != "perfmon-trace-disabled"));
        set_trace_enabled(true);
        assert!(trace_enabled());
        set_trace_enabled(false);
    }

    #[test]
    fn spans_feed_the_ring_and_stage_histograms() {
        let _guard = test_guard();
        let trace = traced_thread("trace-feeds-ring", || {
            for round in 0..10u32 {
                let span = StageSpan::begin(TraceStage::Prepare);
                std::hint::black_box(round * 7);
                span.finish(8);
            }
        });
        set_trace_enabled(false);
        assert_eq!(trace.total, 10);
        assert_eq!(trace.events.len(), 10);
        assert!(trace
            .events
            .iter()
            .all(|e| e.stage == TraceStage::Prepare && e.ops == 8));
        // Start stamps are non-decreasing within a thread.
        for pair in trace.events.windows(2) {
            assert!(pair[0].start <= pair[1].start);
        }
        assert!(stage_histogram(TraceStage::Prepare).count() >= 10);
    }

    #[test]
    fn ring_wraps_keeping_the_most_recent_events() {
        let _guard = test_guard();
        set_ring_capacity(8);
        let trace = traced_thread("trace-wraps", || {
            for i in 0..20u32 {
                let span = StageSpan::begin(TraceStage::Drain);
                span.finish(i);
            }
        });
        set_ring_capacity(DEFAULT_RING_CAPACITY);
        set_trace_enabled(false);
        assert_eq!(trace.total, 20, "every event was counted");
        assert_eq!(trace.events.len(), 8, "the ring kept its capacity");
        // The retained window is the last 8 events, oldest first.
        let ops: Vec<u32> = trace.events.iter().map(|e| e.ops).collect();
        assert_eq!(ops, (12..20).collect::<Vec<u32>>());
        // The histograms saw all 20 even though the ring wrapped.
        assert!(stage_histogram(TraceStage::Drain).count() >= 20);
    }

    #[test]
    fn snapshot_truncates_to_the_most_recent_events() {
        let _guard = test_guard();
        let _ = traced_thread("trace-truncates", || {
            for i in 0..6u32 {
                let span = StageSpan::begin(TraceStage::ReplyPublish);
                span.finish(100 + i);
            }
        });
        set_trace_enabled(false);
        let report = snapshot(3);
        let t = report
            .threads
            .iter()
            .find(|t| t.name == "trace-truncates")
            .unwrap();
        let ops: Vec<u32> = t.events.iter().map(|e| e.ops).collect();
        assert_eq!(ops, vec![103, 104, 105]);
        assert!(report.render().contains("reply_publish"));
    }

    #[test]
    fn stage_names_are_unique_and_stable() {
        let names: Vec<_> = ALL_STAGES.iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), STAGE_COUNT);
        assert_eq!(TraceStage::RingEnqueue.name(), "ring_enqueue");
    }
}
