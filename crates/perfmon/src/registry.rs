//! A process-level metrics plane: named counters, gauges and histograms
//! with a typed snapshot and a Prometheus-text-exposition renderer.
//!
//! The paper's evaluation (§7) is built entirely on measurements taken
//! *outside* the server; this registry is the mirror-image — the server
//! measuring itself while it runs.  Three design points matter on the hot
//! path:
//!
//! * **Sharded counters** — [`Counter::add`] touches one cache-line-padded
//!   atomic picked by a per-thread shard index, so concurrent workers never
//!   contend on a counter line (the same false-sharing discipline the
//!   message rings use).
//! * **Sampled collectors** — subsystems that already keep their own
//!   lock-free counters (`ServerStats`, `BatchCounters`, `FrontendStats`)
//!   are *registered* as closures and read only at scrape time, so putting
//!   them on the metrics plane costs the hot path nothing.
//! * **Non-destructive snapshots** — [`MetricsRegistry::snapshot`] only
//!   loads; it never resets a source, so a scrape cannot steal samples from
//!   a feedback controller reading the same source.
//!
//! Rendering follows the Prometheus text exposition format (version 0.0.4):
//! `# HELP` / `# TYPE` headers per family, `name{labels} value` samples,
//! and `_bucket`/`_sum`/`_count` expansion for histograms, so any scraper
//! (or [`parse_prometheus_text`]) can consume the output.

use cphash_sync::atomic::plain::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::LatencyHistogram;

/// Number of per-thread shards a [`Counter`] or [`Histogram`] spreads its
/// updates across (power of two).
const SHARDS: usize = 16;

/// One cache-line-padded counter shard, so two shards never share a line.
#[repr(align(64))]
struct Shard(AtomicU64);

/// The per-thread shard index: the first time a thread touches a sharded
/// metric it claims the next slot round-robin, giving each worker thread a
/// stable private shard (threads beyond [`SHARDS`] wrap and share).
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    SLOT.with(|slot| {
        let mut idx = slot.get();
        if idx == usize::MAX {
            idx = NEXT.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic diagnostic counter; guards no data
            slot.set(idx);
        }
        idx & (SHARDS - 1)
    })
}

/// A monotonically increasing counter handle; cloning shares the counter.
#[derive(Clone)]
pub struct Counter {
    shards: Arc<[Shard; SHARDS]>,
}

impl Counter {
    fn new() -> Counter {
        Counter {
            shards: Arc::new(std::array::from_fn(|_| Shard(AtomicU64::new(0)))),
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` to the calling thread's shard (no cross-thread contention).
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed); // relaxed: monotonic diagnostic counter; guards no data
    }

    /// Current value: the sum over all shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed)) // relaxed: diagnostic snapshot; tearing across counters is fine
            .sum()
    }
}

impl core::fmt::Debug for Counter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Counter({})", self.value())
    }
}

/// A settable gauge handle (stored as `f64` bits; u64 values up to 2^53
/// round-trip exactly).  Cloning shares the gauge.
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed); // relaxed: diagnostic gauge; guards no data
    }

    /// Set the gauge from an integer.
    #[inline]
    pub fn set_u64(&self, value: u64) {
        self.set(value as f64);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed)) // relaxed: diagnostic snapshot; tearing across counters is fine
    }
}

impl core::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Gauge({})", self.value())
    }
}

/// A registry-owned histogram handle: recording locks one per-thread shard
/// (uncontended in practice), snapshots merge the shards without resetting
/// them.  Cloning shares the histogram.
#[derive(Clone)]
pub struct Histogram {
    shards: Arc<[Mutex<LatencyHistogram>; SHARDS]>,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            shards: Arc::new(std::array::from_fn(|_| Mutex::new(LatencyHistogram::new()))),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.shards[shard_index()]
            .lock()
            .expect("histogram shard poisoned")
            .record(value);
    }

    /// A merged, non-destructive snapshot of all shards.
    pub fn snapshot(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for shard in self.shards.iter() {
            merged.merge(&shard.lock().expect("histogram shard poisoned"));
        }
        merged
    }
}

impl core::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Histogram(count={})", self.snapshot().count())
    }
}

/// Where a registered metric's value comes from at snapshot time.
enum Source {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    GaugeFn(Box<dyn Fn() -> f64 + Send + Sync>),
    HistogramFn(Box<dyn Fn() -> LatencyHistogram + Send + Sync>),
}

/// One registered metric.
struct Registration {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    source: Source,
}

/// A named collection of metrics with snapshot and Prometheus rendering.
///
/// Registration order is preserved; metrics sharing a name (e.g. one
/// histogram per `stage` label) should be registered consecutively so the
/// renderer emits one `# HELP`/`# TYPE` header per family.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Vec<Registration>>,
}

impl core::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        write!(f, "MetricsRegistry({} metrics)", inner.len())
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn register(&self, name: &str, help: &str, labels: &[(&str, &str)], source: Source) {
        debug_assert!(valid_metric_name(name), "invalid metric name {name:?}");
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .push(Registration {
                name: name.to_string(),
                help: help.to_string(),
                labels: labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                source,
            });
    }

    /// Register and return a new owned counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let c = Counter::new();
        self.register(name, help, &[], Source::Counter(c.clone()));
        c
    }

    /// Register and return a new owned gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let g = Gauge::new();
        self.register(name, help, &[], Source::Gauge(g.clone()));
        g
    }

    /// Register and return a new owned histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        let h = Histogram::new();
        self.register(name, help, &[], Source::Histogram(h.clone()));
        h
    }

    /// Register a counter sampled from an existing source at snapshot time.
    pub fn counter_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.register(name, help, labels, Source::CounterFn(Box::new(f)));
    }

    /// Register a gauge sampled from an existing source at snapshot time.
    pub fn gauge_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.register(name, help, labels, Source::GaugeFn(Box::new(f)));
    }

    /// Register a histogram sampled from an existing source at snapshot
    /// time (the closure must be non-destructive — use peek-style reads).
    pub fn histogram_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> LatencyHistogram + Send + Sync + 'static,
    ) {
        self.register(name, help, labels, Source::HistogramFn(Box::new(f)));
    }

    /// Take a typed, non-destructive snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            samples: inner
                .iter()
                .map(|r| MetricSample {
                    name: r.name.clone(),
                    help: r.help.clone(),
                    labels: r.labels.clone(),
                    value: match &r.source {
                        Source::Counter(c) => MetricValue::Counter(c.value()),
                        Source::Gauge(g) => MetricValue::Gauge(g.value()),
                        Source::Histogram(h) => {
                            MetricValue::Histogram(HistogramSnapshot::of(&h.snapshot()))
                        }
                        Source::CounterFn(f) => MetricValue::Counter(f()),
                        Source::GaugeFn(f) => MetricValue::Gauge(f()),
                        Source::HistogramFn(f) => {
                            MetricValue::Histogram(HistogramSnapshot::of(&f()))
                        }
                    },
                })
                .collect(),
        }
    }

    /// Snapshot and render in one step.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().to_prometheus_text()
    }
}

/// A point-in-time view of every metric in a [`MetricsRegistry`].
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// The samples, in registration order.
    pub samples: Vec<MetricSample>,
}

/// One metric's snapshot.
#[derive(Debug, Clone)]
pub struct MetricSample {
    /// Metric family name (e.g. `cphash_requests_total`).
    pub name: String,
    /// Human-readable description.
    pub help: String,
    /// Label key/value pairs.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: MetricValue,
}

/// The typed value of one sample.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// A monotone counter.
    Counter(u64),
    /// A point-in-time gauge.
    Gauge(f64),
    /// A full histogram.
    Histogram(HistogramSnapshot),
}

/// A histogram flattened for export: cumulative bucket counts plus the
/// scalar summaries scrapers expect.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// `(upper_bound, cumulative_count)` per occupied bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u128,
}

impl HistogramSnapshot {
    /// Flatten a [`LatencyHistogram`].
    pub fn of(h: &LatencyHistogram) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut cumulative = 0u64;
        for (upper, count) in h.nonzero_buckets() {
            cumulative += count;
            buckets.push((upper, cumulative));
        }
        HistogramSnapshot {
            buckets,
            count: h.count(),
            sum: h.sum(),
        }
    }
}

impl MetricsSnapshot {
    /// The first sample with the given family name.
    pub fn get(&self, name: &str) -> Option<&MetricSample> {
        self.samples.iter().find(|s| s.name == name)
    }

    /// Render in the Prometheus text exposition format (version 0.0.4).
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::with_capacity(64 * self.samples.len());
        let mut previous: Option<&str> = None;
        for sample in &self.samples {
            if previous != Some(sample.name.as_str()) {
                let kind = match sample.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# HELP {} {}\n", sample.name, sample.help));
                out.push_str(&format!("# TYPE {} {}\n", sample.name, kind));
                previous = Some(sample.name.as_str());
            }
            match &sample.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, None),
                        v
                    ));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, None),
                        v
                    ));
                }
                MetricValue::Histogram(h) => {
                    for (upper, cumulative) in &h.buckets {
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            sample.name,
                            render_labels(&sample.labels, Some(&upper.to_string())),
                            cumulative
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, Some("+Inf")),
                        h.count
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, None),
                        h.sum
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, None),
                        h.count
                    ));
                }
            }
        }
        out
    }
}

/// Render a label set (optionally with an `le` bucket bound appended) as
/// `{k="v",...}`, or nothing when there are no labels.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    if let Some(bound) = le {
        parts.push(format!("le=\"{bound}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Is `name` a legal Prometheus metric name?
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// One sample line parsed back out of Prometheus text.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// Sample name (histogram expansions keep their `_bucket`/`_sum`/
    /// `_count` suffix).
    pub name: String,
    /// The raw label block including braces (empty if unlabelled).
    pub labels: String,
    /// The sample value.
    pub value: f64,
}

/// Parse Prometheus text exposition back into samples — the scrape-side
/// inverse of [`MetricsSnapshot::to_prometheus_text`], used by the load
/// generator's timeline scraper and the observability smoke tests.
///
/// Returns an error naming the first malformed line.
pub fn parse_prometheus_text(text: &str) -> Result<Vec<ParsedSample>, String> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("no value separator in {line:?}"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("bad sample value in {line:?}"))?;
        let (name, labels) = match head.find('{') {
            Some(brace) => {
                if !head.ends_with('}') {
                    return Err(format!("unterminated label block in {line:?}"));
                }
                (&head[..brace], head[brace..].to_string())
            }
            None => (head, String::new()),
        };
        if !valid_metric_name(name) {
            return Err(format!("invalid metric name in {line:?}"));
        }
        samples.push(ParsedSample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_shard_and_sum() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("test_ops_total", "ops");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let counter = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        counter.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        counter.add(5);
        assert_eq!(counter.value(), 40_005);
    }

    #[test]
    fn gauges_round_trip_and_histograms_merge() {
        let registry = MetricsRegistry::new();
        let gauge = registry.gauge("test_depth", "queue depth");
        gauge.set_u64(17);
        assert_eq!(gauge.value(), 17.0);
        gauge.set(2.5);
        assert_eq!(gauge.value(), 2.5);

        let histogram = registry.histogram("test_latency", "lat");
        for v in [1u64, 100, 10_000] {
            histogram.record(v);
        }
        let snap = histogram.snapshot();
        assert_eq!(snap.count(), 3);
        assert_eq!(snap.max(), 10_000);
        // Non-destructive: snapshotting again sees the same samples.
        assert_eq!(histogram.snapshot().count(), 3);
    }

    #[test]
    fn prometheus_rendering_and_parsing_round_trip() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("demo_requests_total", "requests served");
        c.add(42);
        registry.gauge_fn("demo_queue_depth", "depth", &[], || 7.0);
        let h = registry.histogram("demo_latency_ns", "latency");
        h.record(900);
        h.record(5_000);
        registry.counter_fn(
            "demo_stage_total",
            "per stage",
            &[("stage", "execute")],
            || 3,
        );

        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE demo_requests_total counter"));
        assert!(text.contains("demo_requests_total 42"));
        assert!(text.contains("demo_queue_depth 7"));
        assert!(text.contains("# TYPE demo_latency_ns histogram"));
        assert!(text.contains("demo_latency_ns_bucket{le=\"1024\"} 1"));
        assert!(text.contains("demo_latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("demo_latency_ns_sum 5900"));
        assert!(text.contains("demo_latency_ns_count 2"));
        assert!(text.contains("demo_stage_total{stage=\"execute\"} 3"));

        let parsed = parse_prometheus_text(&text).expect("rendered text parses");
        let requests = parsed
            .iter()
            .find(|s| s.name == "demo_requests_total")
            .unwrap();
        assert_eq!(requests.value, 42.0);
        let stage = parsed
            .iter()
            .find(|s| s.name == "demo_stage_total")
            .unwrap();
        assert_eq!(stage.labels, "{stage=\"execute\"}");
    }

    #[test]
    fn snapshot_is_typed_and_ordered() {
        let registry = MetricsRegistry::new();
        registry.counter("a_total", "a").add(1);
        registry.gauge("b", "b").set(2.0);
        let snap = registry.snapshot();
        assert_eq!(snap.samples.len(), 2);
        assert!(matches!(
            snap.get("a_total").unwrap().value,
            MetricValue::Counter(1)
        ));
        assert!(matches!(snap.get("b").unwrap().value, MetricValue::Gauge(v) if v == 2.0));
        assert!(snap.get("missing").is_none());
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus_text("good_metric 1\n").is_ok());
        assert!(parse_prometheus_text("novalue\n").is_err());
        assert!(parse_prometheus_text("name{unclosed 1\n").is_err());
        assert!(parse_prometheus_text("9starts_with_digit 1\n").is_err());
        assert!(parse_prometheus_text("bad value\n").is_err());
    }
}
