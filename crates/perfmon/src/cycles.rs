//! Timestamp-counter access.
//!
//! On x86-64 this reads the TSC with `rdtsc`, the same primitive the paper's
//! profiling library used; elsewhere it falls back to a monotonic nanosecond
//! clock, which is sufficient because the workspace only ever uses cycle
//! counts for *relative* comparisons and per-operation averages.

use std::time::Instant;

/// Read the current cycle counter.
#[inline]
pub fn cycles_now() -> u64 {
    imp::now()
}

/// A span measured in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleSpan {
    start: u64,
}

impl CycleSpan {
    /// Start measuring.
    #[inline]
    pub fn start() -> Self {
        CycleSpan {
            start: cycles_now(),
        }
    }

    /// Cycles elapsed since `start` (saturating, in case of TSC weirdness
    /// across sockets).
    #[inline]
    pub fn elapsed(&self) -> u64 {
        cycles_now().saturating_sub(self.start)
    }
}

/// Estimate the cycle counter's frequency by measuring it against the wall
/// clock for roughly `sample_ms` milliseconds.
pub fn estimate_cycles_per_second(sample_ms: u64) -> f64 {
    let wall_start = Instant::now();
    let c0 = cycles_now();
    std::thread::sleep(std::time::Duration::from_millis(sample_ms.max(1)));
    let c1 = cycles_now();
    let elapsed = wall_start.elapsed().as_secs_f64();
    if elapsed <= 0.0 {
        return 0.0;
    }
    (c1.saturating_sub(c0)) as f64 / elapsed
}

#[cfg(target_arch = "x86_64")]
mod imp {
    #[inline]
    pub fn now() -> u64 {
        // SAFETY: `_rdtsc` has no memory-safety preconditions.
        unsafe { core::arch::x86_64::_rdtsc() }
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod imp {
    use std::sync::OnceLock;
    use std::time::Instant;

    static EPOCH: OnceLock<Instant> = OnceLock::new();

    #[inline]
    pub fn now() -> u64 {
        let epoch = EPOCH.get_or_init(Instant::now);
        epoch.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic_enough() {
        let a = cycles_now();
        let mut x = 0u64;
        for i in 0..10_000u64 {
            x = x.wrapping_add(i * 3);
        }
        std::hint::black_box(x);
        let b = cycles_now();
        assert!(b >= a, "counter went backwards: {a} -> {b}");
    }

    #[test]
    fn span_measures_work() {
        let span = CycleSpan::start();
        let mut x = 1u64;
        for i in 1..50_000u64 {
            x = x.wrapping_mul(i) ^ i;
        }
        std::hint::black_box(x);
        assert!(span.elapsed() > 0);
    }

    #[test]
    fn frequency_estimate_is_plausible() {
        let hz = estimate_cycles_per_second(10);
        // Anything between 100 MHz and 10 GHz is plausible for a TSC; the
        // nanosecond fallback lands at ~1 GHz.
        assert!(hz > 1e8 && hz < 1e10, "estimated {hz:.3e} Hz");
    }
}
