//! Counters for the batched, prefetch-pipelined server hot loop.
//!
//! Every CPHash server thread drains its client lanes in batches, prefetches
//! the hash buckets for the whole batch, and only then executes the
//! operations.  [`BatchCounters`] is the lock-free block those threads
//! update; [`BatchStats`] is the plain snapshot everything downstream
//! (table snapshots, CPSERVER metrics, the `ablate_prefetch` harness)
//! reports.  The interesting derived figure is the **average batch
//! occupancy** — how many operations each synchronization round actually
//! carried, i.e. how much DRAM latency the pipeline had the opportunity to
//! overlap.

use cphash_sync::atomic::plain::{AtomicU64, Ordering};

/// Lock-free batch-pipeline counters, updated by one server thread and read
/// by anyone.
#[derive(Debug, Default)]
pub struct BatchCounters {
    /// Batched execution rounds completed.
    batches: AtomicU64,
    /// Data operations executed inside batched rounds.
    ops: AtomicU64,
    /// Software prefetches issued during the staging pass.
    prefetches: AtomicU64,
}

impl BatchCounters {
    /// New zeroed counters.
    pub fn new() -> Self {
        BatchCounters::default()
    }

    /// Record one batched round that executed `ops` operations and issued
    /// `prefetches` bucket prefetches.
    #[inline]
    pub fn note_batch(&self, ops: u64, prefetches: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic diagnostic counter; guards no data
        self.ops.fetch_add(ops, Ordering::Relaxed); // relaxed: monotonic diagnostic counter; guards no data
        self.prefetches.fetch_add(prefetches, Ordering::Relaxed); // relaxed: monotonic diagnostic counter; guards no data
    }

    /// A plain snapshot of the current counter values.
    pub fn snapshot(&self) -> BatchStats {
        BatchStats {
            batches: self.batches.load(Ordering::Relaxed), // relaxed: diagnostic snapshot; tearing across counters is fine
            ops: self.ops.load(Ordering::Relaxed), // relaxed: diagnostic snapshot; tearing across counters is fine
            prefetches: self.prefetches.load(Ordering::Relaxed), // relaxed: diagnostic snapshot; tearing across counters is fine
        }
    }
}

/// A point-in-time view of [`BatchCounters`], mergeable across servers.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BatchStats {
    /// Batched execution rounds completed.
    pub batches: u64,
    /// Data operations executed inside batched rounds.
    pub ops: u64,
    /// Software prefetches issued during staging passes.
    pub prefetches: u64,
}

impl BatchStats {
    /// Mean operations per batched round (0 when no batch ran) — the
    /// pipeline depth the workload actually achieved.
    pub fn avg_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.ops as f64 / self.batches as f64
        }
    }

    /// Accumulate another server's snapshot into this one.
    pub fn merge(&mut self, other: &BatchStats) {
        self.batches += other.batches;
        self.ops += other.ops;
        self.prefetches += other.prefetches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = BatchCounters::new();
        c.note_batch(8, 8);
        c.note_batch(4, 0);
        let s = c.snapshot();
        assert_eq!(s.batches, 2);
        assert_eq!(s.ops, 12);
        assert_eq!(s.prefetches, 8);
        assert!((s.avg_occupancy() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe_and_merge_sums() {
        let mut a = BatchStats::default();
        assert_eq!(a.avg_occupancy(), 0.0);
        a.merge(&BatchStats {
            batches: 3,
            ops: 30,
            prefetches: 29,
        });
        a.merge(&BatchStats {
            batches: 1,
            ops: 2,
            prefetches: 0,
        });
        assert_eq!(a.batches, 4);
        assert_eq!(a.ops, 32);
        assert_eq!(a.prefetches, 29);
        assert_eq!(a.avg_occupancy(), 8.0);
    }
}
