//! Measurement utilities for the CPHash evaluation.
//!
//! The paper's numbers were gathered with a small profiling library built on
//! `rdtsc`/`rdpmc` plus a kernel module (§5).  Hardware performance counters
//! are replaced in this reproduction by the software cache model
//! (`cphash-cachesim`); the timing half lives here:
//!
//! * [`cycles`] — a timestamp-counter reader (`rdtsc` on x86-64, a
//!   monotonic-clock fallback elsewhere) and cycle↔time conversion.
//! * [`timer`] — stopwatches and throughput meters for "queries / second"
//!   style results.
//! * [`histogram`] — log-bucketed latency histograms with percentile
//!   extraction.
//! * [`series`] — labelled (x, y) series and CSV/gnuplot-style rendering,
//!   the output format of every figure-regenerating benchmark binary.
//! * [`load`] — smoothed load gauges (EWMA), the low-pass filter behind the
//!   migration pacer's queue-depth feedback loop.
//! * [`batch`] — counters for the batched, prefetch-pipelined server hot
//!   loop (batches, occupancy, prefetches issued).
//! * [`window`] — a shared windowed latency histogram, the p99 signal
//!   source for the migration pacer's latency-feedback mode.
//! * [`registry`] — the metrics plane: named counters/gauges/histograms
//!   with per-worker sharded atomics, typed snapshots, and a
//!   Prometheus-text renderer (what `cpserverd --stats-addr` serves).
//! * [`trace`] — zero-cost-when-off, cycle-stamped stage tracing of the
//!   operation hot path, with per-thread event rings and per-stage
//!   histograms (`CPHASH_TRACE` / `cpserverd --trace`).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod batch;
pub mod cycles;
pub mod histogram;
pub mod load;
pub mod registry;
pub mod series;
pub mod timer;
pub mod trace;
pub mod window;

pub use batch::{BatchCounters, BatchStats};
pub use cycles::{cycles_now, estimate_cycles_per_second, CycleSpan};
pub use histogram::LatencyHistogram;
pub use load::EwmaGauge;
pub use registry::{
    parse_prometheus_text, Counter, Gauge, Histogram, HistogramSnapshot, MetricSample, MetricValue,
    MetricsRegistry, MetricsSnapshot, ParsedSample,
};
pub use series::{DataPoint, DataSeries, FigureReport};
pub use timer::{Stopwatch, ThroughputMeter};
pub use trace::{StageSpan, TraceEvent, TraceReport, TraceStage};
pub use window::SharedLatencyWindow;
