//! A shared, windowed latency histogram.
//!
//! The migration pacer's feedback loop wants a *client-observed* signal —
//! "are requests getting slow?" — rather than the server-side queue depth.
//! [`SharedLatencyWindow`] is the bridge: request-path code records
//! latencies into it from any thread, and the pacer periodically *takes the
//! window* (snapshot-and-reset), so each feedback sample reflects only the
//! latency distribution since the previous sample.

use std::sync::Mutex;

use crate::histogram::LatencyHistogram;

/// A thread-safe latency histogram with take-and-reset sampling.
///
/// Recording is a short mutex-protected histogram update; the lock is
/// uncontended in practice (recorders are worker threads touching it once
/// per request, the sampler once per migration chunk).
#[derive(Debug, Default)]
pub struct SharedLatencyWindow {
    inner: Mutex<LatencyHistogram>,
}

impl SharedLatencyWindow {
    /// An empty window.
    pub fn new() -> Self {
        SharedLatencyWindow::default()
    }

    /// Record one latency sample, in nanoseconds.
    pub fn record_ns(&self, nanos: u64) {
        self.inner
            .lock()
            .expect("latency window poisoned")
            .record(nanos);
    }

    /// Samples recorded since the last [`SharedLatencyWindow::take`].
    pub fn len(&self) -> u64 {
        self.inner.lock().expect("latency window poisoned").count()
    }

    /// Whether the current window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Take the current window, leaving an empty one behind.
    pub fn take(&self) -> LatencyHistogram {
        let mut guard = self.inner.lock().expect("latency window poisoned");
        core::mem::take(&mut *guard)
    }

    /// A non-destructive copy of the current window.
    ///
    /// Stats scrapes must use this rather than [`SharedLatencyWindow::take`]:
    /// the migration pacer's latency-feedback mode owns the take-and-reset
    /// cycle, and a scrape that drained the window would steal the samples
    /// the pacer's next feedback decision depends on (and vice versa).
    pub fn peek(&self) -> LatencyHistogram {
        self.inner.lock().expect("latency window poisoned").clone()
    }

    /// The p99 of the current window in *microseconds*, consuming the
    /// window (0.0 when no samples arrived since the last call).
    ///
    /// This is the probe shape the migration pacer's latency-feedback mode
    /// expects: each call answers "what did clients feel since I last
    /// asked?".
    pub fn take_p99_us(&self) -> f64 {
        let window = self.take();
        if window.count() == 0 {
            0.0
        } else {
            window.percentile(99.0) as f64 / 1_000.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_takes_reset_the_window() {
        let w = SharedLatencyWindow::new();
        assert!(w.is_empty());
        assert_eq!(w.take_p99_us(), 0.0);
        for _ in 0..100 {
            w.record_ns(1_000_000); // 1 ms
        }
        assert_eq!(w.len(), 100);
        let p99 = w.take_p99_us();
        // Log-bucketed: the 1 ms samples land in the bucket whose upper
        // bound is 2^20 ns ≈ 1049 µs.
        assert!((500.0..3_000.0).contains(&p99), "p99 {p99}");
        assert!(w.is_empty(), "take consumed the window");
        assert_eq!(w.take_p99_us(), 0.0);
    }

    #[test]
    fn peek_does_not_steal_samples_from_the_pacer() {
        let w = SharedLatencyWindow::new();
        for _ in 0..50 {
            w.record_ns(2_000_000);
        }
        // A stats scrape peeks...
        let scraped = w.peek();
        assert_eq!(scraped.count(), 50);
        assert!(!w.is_empty(), "peek left the window intact");
        // ...and the pacer's take still sees every sample.
        assert!(w.take_p99_us() > 0.0);
        assert!(w.is_empty());
        assert_eq!(w.peek().count(), 0);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        use std::sync::Arc;
        let w = Arc::new(SharedLatencyWindow::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let w = Arc::clone(&w);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        w.record_ns(i + 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(w.take().count(), 4_000);
    }
}
