//! Wall-clock stopwatches and throughput meters.

use std::time::{Duration, Instant};

/// A simple wall-clock stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

/// Accumulates an operation count against elapsed wall-clock time and
/// reports "queries / second" figures like the paper's throughput graphs.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputMeter {
    started: Instant,
    operations: u64,
}

impl ThroughputMeter {
    /// Start a new measurement window.
    pub fn start() -> Self {
        ThroughputMeter {
            started: Instant::now(),
            operations: 0,
        }
    }

    /// Record `n` completed operations.
    pub fn record(&mut self, n: u64) {
        self.operations += n;
    }

    /// Total operations recorded.
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// Elapsed seconds since the meter started.
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Operations per second over the whole window.
    pub fn ops_per_second(&self) -> f64 {
        let secs = self.elapsed_secs();
        if secs <= 0.0 {
            0.0
        } else {
            self.operations as f64 / secs
        }
    }

    /// Operations per second per `units` participants (the per-hardware-
    /// thread and per-core figures of Figures 11 and 14).
    pub fn ops_per_second_per(&self, units: usize) -> f64 {
        if units == 0 {
            0.0
        } else {
            self.ops_per_second() / units as f64
        }
    }
}

impl Default for ThroughputMeter {
    fn default() -> Self {
        ThroughputMeter::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_advances() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed_secs() > 0.0);
        assert!(sw.elapsed() >= Duration::from_millis(1));
    }

    #[test]
    fn throughput_accumulates() {
        let mut meter = ThroughputMeter::start();
        meter.record(500);
        meter.record(500);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(meter.operations(), 1000);
        assert!(meter.ops_per_second() > 0.0);
        assert!(meter.ops_per_second_per(4) < meter.ops_per_second());
        assert_eq!(meter.ops_per_second_per(0), 0.0);
    }
}
