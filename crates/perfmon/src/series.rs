//! Labelled data series — the output format of the figure harnesses.
//!
//! Every `figN` benchmark binary produces a [`FigureReport`]: a set of named
//! series (one per curve in the paper's plot) over a common x axis.  The
//! report renders both as an aligned text table (for eyeballing) and as CSV
//! (for regenerating the plot with any plotting tool).

use serde::{Deserialize, Serialize};

/// One measured point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataPoint {
    /// X coordinate (working-set bytes, insert ratio, thread count, …).
    pub x: f64,
    /// Y coordinate (throughput, misses per op, …).
    pub y: f64,
}

/// A named curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataSeries {
    /// Curve label ("CPHash", "LockHash", "Memcached-style", …).
    pub label: String,
    /// Points in x order.
    pub points: Vec<DataPoint>,
}

impl DataSeries {
    /// An empty series with a label.
    pub fn new(label: impl Into<String>) -> Self {
        DataSeries {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push(DataPoint { x, y });
    }

    /// Y value at a given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.x - x).abs() < 1e-9)
            .map(|p| p.y)
    }

    /// Largest y value in the series.
    pub fn max_y(&self) -> f64 {
        self.points.iter().map(|p| p.y).fold(f64::MIN, f64::max)
    }
}

/// A full figure: axis labels plus one or more series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureReport {
    /// Figure title ("Figure 5: throughput vs working set size").
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<DataSeries>,
}

impl FigureReport {
    /// An empty report.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        FigureReport {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a series and return a mutable handle to it.
    pub fn add_series(&mut self, label: impl Into<String>) -> &mut DataSeries {
        self.series.push(DataSeries::new(label));
        self.series.last_mut().expect("just pushed")
    }

    /// Find a series by label.
    pub fn series_named(&self, label: &str) -> Option<&DataSeries> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render as CSV: `x,<label1>,<label2>,…` with one row per distinct x.
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN x values"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        out.push_str(&self.x_label.to_string());
        for s in &self.series {
            out.push(',');
            out.push_str(&s.label);
        }
        out.push('\n');
        for x in xs {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => out.push_str(&format!(",{y}")),
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render as an aligned human-readable table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        out.push_str(&format!("{:>16}", self.x_label));
        for s in &self.series {
            out.push_str(&format!(" {:>16}", s.label));
        }
        out.push('\n');
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN x values"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        for x in xs {
            out.push_str(&format!("{x:>16.3}"));
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => out.push_str(&format!(" {y:>16.3}")),
                    None => out.push_str(&format!(" {:>16}", "-")),
                }
            }
            out.push('\n');
        }
        out.push_str(&format!("({} y-axis)\n", self.y_label));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accumulate_points() {
        let mut s = DataSeries::new("CPHash");
        s.push(1.0, 10.0);
        s.push(2.0, 20.0);
        assert_eq!(s.y_at(2.0), Some(20.0));
        assert_eq!(s.y_at(3.0), None);
        assert_eq!(s.max_y(), 20.0);
    }

    #[test]
    fn report_renders_csv_and_table() {
        let mut fig = FigureReport::new("Figure X", "working_set", "throughput");
        {
            let a = fig.add_series("CPHash");
            a.push(1024.0, 100.0);
            a.push(2048.0, 150.0);
        }
        {
            let b = fig.add_series("LockHash");
            b.push(1024.0, 80.0);
        }
        let csv = fig.to_csv();
        assert!(csv.contains("working_set,CPHash,LockHash"));
        assert!(csv.contains("1024,100,80"));
        assert!(csv.contains("2048,150,"));
        let table = fig.to_table();
        assert!(table.contains("Figure X"));
        assert!(table.contains("CPHash"));
        assert!(fig.series_named("LockHash").is_some());
        assert!(fig.series_named("nope").is_none());
    }
}
