//! Smoothed load gauges.
//!
//! The migration pacer (in `cphash-migrate`) samples per-partition queue
//! depth between chunk hand-offs.  Raw samples are spiky — one loop
//! iteration drains a burst, the next drains nothing — so feedback control
//! on the raw signal would oscillate.  [`EwmaGauge`] smooths the samples
//! with an exponentially weighted moving average, the classic low-pass
//! filter for this kind of control loop.

/// An exponentially weighted moving average over irregular samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EwmaGauge {
    alpha: f64,
    value: Option<f64>,
    samples: u64,
}

impl EwmaGauge {
    /// A gauge with smoothing factor `alpha` in `(0, 1]`: each new sample
    /// contributes `alpha` of the new value (1.0 = no smoothing).
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must be in (0, 1], got {alpha}"
        );
        EwmaGauge {
            alpha,
            value: None,
            samples: 0,
        }
    }

    /// Feed one sample and return the updated smoothed value.
    pub fn sample(&mut self, v: f64) -> f64 {
        let next = match self.value {
            Some(current) => current + self.alpha * (v - current),
            None => v,
        };
        self.value = Some(next);
        self.samples += 1;
        next
    }

    /// The current smoothed value (`None` before the first sample).
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// How many samples have been fed in.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Forget all history.
    pub fn reset(&mut self) {
        self.value = None;
        self.samples = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_seeds_the_average() {
        let mut g = EwmaGauge::new(0.25);
        assert_eq!(g.value(), None);
        assert_eq!(g.sample(100.0), 100.0);
        assert_eq!(g.value(), Some(100.0));
        assert_eq!(g.samples(), 1);
    }

    #[test]
    fn smoothing_converges_towards_a_steady_signal() {
        let mut g = EwmaGauge::new(0.5);
        g.sample(0.0);
        for _ in 0..20 {
            g.sample(64.0);
        }
        let v = g.value().unwrap();
        assert!((v - 64.0).abs() < 1e-3, "converged to {v}");
    }

    #[test]
    fn spikes_are_damped() {
        let mut g = EwmaGauge::new(0.1);
        g.sample(10.0);
        let after_spike = g.sample(1000.0);
        assert!(
            after_spike < 120.0,
            "one spike moved the gauge to {after_spike}"
        );
        g.reset();
        assert_eq!(g.value(), None);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn zero_alpha_is_rejected() {
        EwmaGauge::new(0.0);
    }
}
