//! Cross-thread block returns: a Treiber free-stack per size class.
//!
//! The paper's allocator is strictly single-threaded: only the owning
//! server thread allocates and frees (§3.2).  One situation breaks that
//! symmetry — during live re-partitioning, value blocks extracted from a
//! shrinking partition are handed to the *new* owner, and the block's
//! memory still belongs to the old owner's slab.  Shipping every block
//! back through a message ring would burn ring capacity on allocator
//! traffic, so instead each allocator exposes a [`RemoteFreeList`]: a
//! lock-free LIFO per size class that any thread may push freed blocks
//! onto, and that only the owner drains (pop-all, one `swap`) back into
//! its local free lists on the next allocation miss.
//!
//! The stack is intrusive — the freed block's first word stores the next
//! link — so pushing allocates nothing.  Pushers publish the link word
//! with a `Release` CAS; the owner's `Acquire` swap makes the whole chain
//! visible before it is walked.  Pop-all (rather than pop-one) sidesteps
//! the classic Treiber ABA problem: the owner never CASes a node it read
//! from the head, it takes the entire chain in one exchange.
//!
//! Atomics come from the `cphash_sync` facade, so the push/drain protocol
//! is model-checked under `--cfg cphash_model` (see `cphash-modelcheck`).

use core::ptr::NonNull;
use std::sync::Arc;

use cphash_sync::atomic::{AtomicUsize, Ordering};

use crate::size_class::{SizeClass, NUM_CLASSES};
use crate::slab::ValueHandle;

/// Per-class lock-free free stacks shared between an allocator's owner and
/// remote freeing threads.
///
/// Obtain one from [`crate::SlabAllocator::remote_list`] (the allocator
/// creates and drains it); clone the [`Arc`] into any thread that needs to
/// return blocks.
#[derive(Debug)]
pub struct RemoteFreeList {
    /// Head of the intrusive LIFO per size class; `0` means empty.
    heads: [AtomicUsize; NUM_CLASSES],
}

impl Default for RemoteFreeList {
    fn default() -> Self {
        Self::new()
    }
}

impl RemoteFreeList {
    /// An empty free list (all classes empty).
    pub fn new() -> Self {
        RemoteFreeList {
            heads: core::array::from_fn(|_| AtomicUsize::new(0)),
        }
    }

    /// A shared handle to a fresh list.
    pub fn shared() -> Arc<RemoteFreeList> {
        Arc::new(Self::new())
    }

    /// Push a freed block from any thread.
    ///
    /// Returns the handle back as `Err` when the block cannot ride the
    /// stack: huge-class blocks carry their own layout and must be freed
    /// by the owning allocator (`SlabAllocator::free`).
    ///
    /// The caller transfers ownership of the block: it must not touch the
    /// bytes again (the first word becomes the intrusive link).
    pub fn push(&self, handle: ValueHandle) -> Result<(), ValueHandle> {
        if handle.class().is_huge() {
            return Err(handle);
        }
        debug_assert!(handle.block_bytes() >= core::mem::size_of::<usize>());
        let node = handle.as_ptr() as usize;
        let head = &self.heads[handle.class().0];
        // relaxed: the CAS below is the publication point; a stale first
        // read only costs one extra loop iteration.
        let mut cur = head.load(Ordering::Relaxed);
        loop {
            // SAFETY: the pusher owns the block until the CAS succeeds
            // (nobody else can reach it), the block is at least one word
            // (asserted above) and word-aligned per the class layout.
            unsafe { (node as *mut usize).write(cur) };
            // Release publishes the link word written above to the owner's
            // Acquire swap in `pop_all`.
            // relaxed: failure just retries with the refreshed head.
            match head.compare_exchange(cur, node, Ordering::Release, Ordering::Relaxed) {
                Ok(_) => return Ok(()),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Take the entire chain for `class`, leaving the stack empty.
    ///
    /// Only the owning allocator calls this (`pop-all`, one atomic
    /// exchange — no ABA window).  The returned iterator walks the chain;
    /// the links were published by `push`'s Release CAS and are made
    /// visible by this Acquire swap.
    pub(crate) fn pop_all(&self, class: SizeClass) -> RemoteDrain {
        RemoteDrain {
            next: self.heads[class.0].swap(0, Ordering::Acquire),
        }
    }

    /// Whether `class` has pending remote frees (approximate; for pacing
    /// and tests, not for correctness decisions).
    pub fn has_pending(&self, class: SizeClass) -> bool {
        if class.is_huge() {
            return false;
        }
        // relaxed: advisory emptiness probe; the drain swap is the sync.
        self.heads[class.0].load(Ordering::Relaxed) != 0
    }

    /// Reconstruct the [`ValueHandle`] for a drained block of `class`.
    ///
    /// The remote stack stores bare pointers; length information is lost
    /// on push, so reclaimed handles report the full class block size.
    /// (Shipped reclaim goes through `SlabAllocator::reclaim_remote`,
    /// which pushes raw pointers straight onto the local free lists; this
    /// exists for tests that drain the stack directly.)
    #[cfg(test)]
    pub(crate) fn rebuild_handle(ptr: NonNull<u8>, class: SizeClass) -> ValueHandle {
        let block = crate::size_class::class_size(class);
        ValueHandle::from_block(ptr, block, class, block)
    }
}

/// Iterator over a chain detached by [`RemoteFreeList::pop_all`].
pub(crate) struct RemoteDrain {
    next: usize,
}

impl Iterator for RemoteDrain {
    type Item = NonNull<u8>;

    fn next(&mut self) -> Option<NonNull<u8>> {
        let ptr = NonNull::new(self.next as *mut u8)?;
        // SAFETY: `ptr` came off the detached chain: the block is owned by
        // the drainer, and its first word is the link written by `push`
        // (made visible by the Acquire swap in `pop_all`).
        self.next = unsafe { (ptr.as_ptr() as *const usize).read() };
        Some(ptr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size_class::class_for_size;
    use crate::slab::SlabAllocator;

    #[test]
    fn push_drain_round_trip() {
        let mut a = SlabAllocator::unbounded();
        let remote = Arc::clone(a.remote_list());
        let h1 = a.allocate(24).unwrap();
        let h2 = a.allocate(24).unwrap();
        let (p1, p2) = (h1.addr(), h2.addr());
        let class = class_for_size(24);
        remote.push(h1).unwrap();
        remote.push(h2).unwrap();
        assert!(remote.has_pending(class));
        let drained: Vec<u64> = remote.pop_all(class).map(|p| p.as_ptr() as u64).collect();
        // LIFO: last push first.
        assert_eq!(drained, vec![p2, p1]);
        assert!(!remote.has_pending(class));
        // The blocks were detached from the stack; hand them back through
        // the owner so accounting closes.
        for ptr in [p2, p1] {
            let h = RemoteFreeList::rebuild_handle(NonNull::new(ptr as *mut u8).unwrap(), class);
            a.free(h);
        }
        assert_eq!(a.stats().outstanding(), 0);
    }

    #[test]
    fn huge_blocks_are_refused() {
        let mut a = SlabAllocator::unbounded();
        let remote = Arc::clone(a.remote_list());
        let size = crate::size_class::MAX_CLASS_BYTES + 1;
        let h = a.allocate(size).unwrap();
        let h = remote.push(h).unwrap_err();
        a.free(h);
    }

    #[test]
    fn concurrent_pushes_lose_nothing() {
        let mut a = SlabAllocator::unbounded();
        let remote = Arc::clone(a.remote_list());
        let class = class_for_size(64);
        let per_thread = 100;
        let mut expected: Vec<u64> = Vec::new();
        let mut batches: Vec<Vec<ValueHandle>> = Vec::new();
        for _ in 0..4 {
            let batch: Vec<ValueHandle> =
                (0..per_thread).map(|_| a.allocate(64).unwrap()).collect();
            expected.extend(batch.iter().map(|h| h.addr()));
            batches.push(batch);
        }
        std::thread::scope(|s| {
            for batch in batches {
                let remote = Arc::clone(&remote);
                s.spawn(move || {
                    for h in batch {
                        remote.push(h).unwrap();
                    }
                });
            }
        });
        let mut drained: Vec<u64> = remote.pop_all(class).map(|p| p.as_ptr() as u64).collect();
        drained.sort_unstable();
        expected.sort_unstable();
        assert_eq!(drained, expected);
        for ptr in drained {
            a.free(RemoteFreeList::rebuild_handle(
                NonNull::new(ptr as *mut u8).unwrap(),
                class,
            ));
        }
        assert_eq!(a.stats().outstanding(), 0);
    }
}
