//! Single-threaded value allocator for CPHash partitions.
//!
//! The paper makes the allocator part of the design (§3.2):
//!
//! > "It is convenient to allocate memory in the server thread since each
//! > server is responsible for a single partition and so CPHASH can use a
//! > standard single-threaded memory allocator. However, performing the
//! > actual data copying in the server thread is a bad design since for
//! > large values it wipes out the local hardware cache of the server core.
//! > Thus, in CPHASH the space allocation is done in the server thread and
//! > the actual data copying is performed in the client thread."
//!
//! So the allocator must (a) be single-threaded and lock-free because only
//! the owning server thread calls it, (b) hand out blocks that a *different*
//! thread (the client) may fill, and (c) account bytes so the partition
//! knows when to evict (the benchmark's "maximum hash table size" knob is a
//! byte budget).
//!
//! [`SlabAllocator`] implements a segregated-fit allocator: power-of-two
//! size classes, per-class free lists, chunked backing storage obtained from
//! the global allocator.  [`ValueHandle`]s are stable raw-pointer handles a
//! client thread can copy value bytes through while the server thread keeps
//! ownership of the metadata.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod remote;
pub mod size_class;
pub mod slab;
pub mod stats;

pub use remote::RemoteFreeList;
pub use size_class::{class_for_size, class_size, SizeClass, NUM_CLASSES};
pub use slab::{SlabAllocator, SlabConfig, ValueHandle};
pub use stats::AllocStats;
