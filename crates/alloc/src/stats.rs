//! Allocation accounting.

/// Byte and block accounting for one [`crate::SlabAllocator`].
///
/// `bytes_in_use` is the figure the partition compares against its capacity
/// budget when deciding whether to evict; the remaining counters feed the
/// benchmark reports (allocation churn is part of why INSERT-heavy
/// workloads are slower, Figure 10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes currently handed out (rounded up to class sizes).
    pub bytes_in_use: usize,
    /// Bytes reserved from the global allocator for slab chunks.
    pub bytes_reserved: usize,
    /// Number of live blocks.
    pub blocks_in_use: usize,
    /// Total allocations performed.
    pub total_allocs: u64,
    /// Total frees performed.
    pub total_frees: u64,
    /// Allocations that were satisfied from a free list (no new chunk).
    pub freelist_hits: u64,
    /// Allocations refused because they would exceed the capacity budget.
    pub capacity_refusals: u64,
    /// Blocks reclaimed from the remote free list (cross-thread frees).
    pub remote_reclaims: u64,
}

impl AllocStats {
    /// Blocks allocated but not yet freed according to the running totals.
    pub fn outstanding(&self) -> u64 {
        self.total_allocs - self.total_frees
    }

    /// Fraction of allocations served from free lists.
    pub fn freelist_hit_ratio(&self) -> f64 {
        if self.total_allocs == 0 {
            0.0
        } else {
            self.freelist_hits as f64 / self.total_allocs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outstanding_and_ratio() {
        let s = AllocStats {
            total_allocs: 10,
            total_frees: 4,
            freelist_hits: 5,
            ..Default::default()
        };
        assert_eq!(s.outstanding(), 6);
        assert!((s.freelist_hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(AllocStats::default().freelist_hit_ratio(), 0.0);
    }
}
