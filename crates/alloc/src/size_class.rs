//! Power-of-two size classes.
//!
//! Allocation requests are rounded up to the next power of two (minimum 8
//! bytes).  Classes above [`MAX_CLASS_BYTES`] are "huge" and served by a
//! dedicated allocation per value rather than a slab chunk.

/// Smallest block handed out, in bytes (one 64-bit word — the microbenchmark
/// values are exactly this size).
pub const MIN_CLASS_BYTES: usize = 8;

/// Largest slab-managed block, in bytes. Larger requests become huge
/// allocations with their own backing chunk.
pub const MAX_CLASS_BYTES: usize = 1 << 20;

/// Number of slab size classes (8, 16, 32, …, 1 MiB).
pub const NUM_CLASSES: usize =
    (MAX_CLASS_BYTES.trailing_zeros() - MIN_CLASS_BYTES.trailing_zeros()) as usize + 1;

/// Index of a size class. `SizeClass(NUM_CLASSES)` is used internally to tag
/// huge allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SizeClass(pub usize);

impl SizeClass {
    /// Marker class for huge (non-slab) allocations.
    pub const HUGE: SizeClass = SizeClass(NUM_CLASSES);

    /// Is this the huge-allocation marker?
    pub fn is_huge(self) -> bool {
        self.0 >= NUM_CLASSES
    }
}

/// The size class for a request of `size` bytes, or [`SizeClass::HUGE`] if
/// the request exceeds [`MAX_CLASS_BYTES`].
///
/// Zero-byte requests map to the smallest class so every element value has a
/// distinct, non-null address (the CPHash protocol passes value pointers
/// around even for empty values).
#[inline]
pub fn class_for_size(size: usize) -> SizeClass {
    let size = size.max(MIN_CLASS_BYTES);
    if size > MAX_CLASS_BYTES {
        return SizeClass::HUGE;
    }
    let class = size
        .next_power_of_two()
        .trailing_zeros()
        .saturating_sub(MIN_CLASS_BYTES.trailing_zeros()) as usize;
    SizeClass(class)
}

/// Number of usable bytes in a block of the given class.
///
/// For [`SizeClass::HUGE`] the block size equals the request, so callers
/// must track it themselves; this function panics to catch misuse.
#[inline]
pub fn class_size(class: SizeClass) -> usize {
    assert!(
        !class.is_huge(),
        "huge allocations have no fixed class size"
    );
    MIN_CLASS_BYTES << class.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_count_matches_range() {
        // 8 = 2^3, 1 MiB = 2^20 → 18 classes.
        assert_eq!(NUM_CLASSES, 18);
    }

    #[test]
    fn small_requests_round_up_to_min() {
        assert_eq!(class_for_size(0), SizeClass(0));
        assert_eq!(class_for_size(1), SizeClass(0));
        assert_eq!(class_for_size(8), SizeClass(0));
        assert_eq!(class_size(SizeClass(0)), 8);
    }

    #[test]
    fn powers_of_two_map_to_their_own_class() {
        assert_eq!(class_for_size(16), SizeClass(1));
        assert_eq!(class_for_size(64), SizeClass(3));
        assert_eq!(class_for_size(4096), SizeClass(9));
        assert_eq!(class_size(class_for_size(4096)), 4096);
    }

    #[test]
    fn non_powers_round_up() {
        assert_eq!(class_for_size(9), SizeClass(1));
        assert_eq!(class_size(class_for_size(9)), 16);
        assert_eq!(class_size(class_for_size(100)), 128);
        assert_eq!(class_size(class_for_size(1500)), 2048);
    }

    #[test]
    fn huge_requests_are_tagged() {
        assert_eq!(class_for_size(MAX_CLASS_BYTES), SizeClass(NUM_CLASSES - 1));
        assert!(class_for_size(MAX_CLASS_BYTES + 1).is_huge());
        assert!(SizeClass::HUGE.is_huge());
    }

    #[test]
    #[should_panic(expected = "huge")]
    fn class_size_of_huge_panics() {
        let _ = class_size(SizeClass::HUGE);
    }

    #[test]
    fn every_class_size_fits_its_requests() {
        for size in 1..=4096usize {
            let class = class_for_size(size);
            assert!(class_size(class) >= size, "size={size}");
        }
    }
}
