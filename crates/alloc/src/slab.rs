//! Segregated-fit slab allocator.

use core::ptr::NonNull;
use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::sync::Arc;

use crate::remote::RemoteFreeList;
use crate::size_class::{class_for_size, class_size, SizeClass, NUM_CLASSES};
use crate::stats::AllocStats;

/// Maximum guaranteed block alignment. Blocks are aligned to
/// `min(block_bytes, BLOCK_ALIGN)`: the 8-byte class hands out 8-aligned
/// words, every larger class hands out 16-aligned blocks (what the C
/// implementation's malloc would have provided).
pub const BLOCK_ALIGN: usize = 16;

/// Alignment guaranteed for a block of `block_bytes` usable bytes.
pub const fn alignment_for(block_bytes: usize) -> usize {
    if block_bytes < BLOCK_ALIGN {
        block_bytes.next_power_of_two()
    } else {
        BLOCK_ALIGN
    }
}

/// Configuration for a [`SlabAllocator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabConfig {
    /// Byte budget. Allocations that would push `bytes_in_use` above the
    /// budget are refused (the partition then evicts and retries).
    /// `None` means unbounded.
    pub capacity_bytes: Option<usize>,
    /// Granularity of chunk reservations from the global allocator.
    pub chunk_bytes: usize,
}

impl Default for SlabConfig {
    fn default() -> Self {
        SlabConfig {
            capacity_bytes: None,
            chunk_bytes: 64 * 1024,
        }
    }
}

impl SlabConfig {
    /// A config with the given byte budget and default chunking.
    pub fn with_capacity(capacity_bytes: usize) -> Self {
        SlabConfig {
            capacity_bytes: Some(capacity_bytes),
            ..Default::default()
        }
    }
}

/// A stable handle to an allocated value block.
///
/// The handle is what travels in CPHash response messages: the server
/// allocates, sends the handle to the client, and the client copies the
/// value bytes through it.  It is therefore `Send + Sync`, but the raw
/// accessors are `unsafe`: the caller (the CPHash protocol) must guarantee
/// that writes only happen before the element is published (`Ready`) and
/// reads only while a reference count pins the element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueHandle {
    ptr: NonNull<u8>,
    len: usize,
    class: SizeClass,
    block_bytes: usize,
}

// SAFETY: the handle is just a pointer + sizes; synchronization of the
// pointed-to bytes is the CPHash protocol's responsibility (refcounts and
// the NOT-READY/READY hand-off), exactly as in the paper.
unsafe impl Send for ValueHandle {}
unsafe impl Sync for ValueHandle {}

impl ValueHandle {
    /// Length, in bytes, that was requested for this value.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` for zero-length values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes actually reserved (the size class the request rounded up to).
    #[inline]
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// Raw pointer to the first byte of the block.
    #[inline]
    pub fn as_ptr(&self) -> *mut u8 {
        self.ptr.as_ptr()
    }

    /// Numeric address of the block (used by the cache model to attribute
    /// line transfers to value accesses).
    #[inline]
    pub fn addr(&self) -> u64 {
        self.ptr.as_ptr() as u64
    }

    /// The size class this block belongs to.
    #[inline]
    pub(crate) fn class(&self) -> SizeClass {
        self.class
    }

    /// Rebuild a handle from its raw parts (remote free-list tests).
    #[cfg(test)]
    pub(crate) fn from_block(
        ptr: NonNull<u8>,
        len: usize,
        class: SizeClass,
        block_bytes: usize,
    ) -> ValueHandle {
        ValueHandle {
            ptr,
            len,
            class,
            block_bytes,
        }
    }

    /// View the value as a byte slice.
    ///
    /// # Safety
    /// The caller must guarantee that no thread is concurrently writing the
    /// block and that the block is still allocated (in CPHash terms: the
    /// element is READY and the caller holds a reference count).
    #[inline]
    pub unsafe fn as_slice(&self) -> &[u8] {
        // SAFETY: contract forwarded to the caller.
        unsafe { core::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Copy `data` into the block starting at byte 0.
    ///
    /// # Safety
    /// The caller must guarantee exclusive write access to the block (in
    /// CPHash terms: the element is still NOT-READY and only this client
    /// writes it) and that `data.len() <= self.len()`.
    #[inline]
    pub unsafe fn copy_from(&self, data: &[u8]) {
        debug_assert!(data.len() <= self.len);
        // SAFETY: contract forwarded to the caller; regions cannot overlap
        // because `data` is a safe Rust slice distinct from this raw block.
        unsafe {
            core::ptr::copy_nonoverlapping(
                data.as_ptr(),
                self.ptr.as_ptr(),
                data.len().min(self.len),
            );
        }
    }
}

/// One reservation obtained from the global allocator.
struct Chunk {
    ptr: NonNull<u8>,
    layout: Layout,
}

/// A single-threaded segregated-fit allocator with byte accounting.
///
/// Owned by exactly one partition (and therefore touched by exactly one
/// server thread), so none of the metadata is atomic — this is the
/// "standard single-threaded memory allocator" the paper relies on.
pub struct SlabAllocator {
    config: SlabConfig,
    free_lists: Vec<Vec<NonNull<u8>>>,
    chunks: Vec<Chunk>,
    stats: AllocStats,
    remote: Arc<RemoteFreeList>,
}

// SAFETY: the allocator is moved into its server thread at startup; all the
// raw pointers it stores refer to heap memory it owns.
unsafe impl Send for SlabAllocator {}

impl SlabAllocator {
    /// Create an allocator with the given configuration.
    pub fn new(config: SlabConfig) -> Self {
        assert!(config.chunk_bytes >= 4096, "chunk size unreasonably small");
        SlabAllocator {
            config,
            free_lists: (0..NUM_CLASSES).map(|_| Vec::new()).collect(),
            chunks: Vec::new(),
            stats: AllocStats::default(),
            remote: RemoteFreeList::shared(),
        }
    }

    /// The lock-free remote free list other threads push freed blocks onto.
    ///
    /// Clone the `Arc` into any thread that needs to return this
    /// allocator's blocks without owning the allocator (e.g. the new owner
    /// of migrated values during re-partitioning).
    pub fn remote_list(&self) -> &Arc<RemoteFreeList> {
        &self.remote
    }

    /// Create an unbounded allocator with default chunking.
    pub fn unbounded() -> Self {
        Self::new(SlabConfig::default())
    }

    /// The configured byte budget, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.config.capacity_bytes
    }

    /// Change the byte budget at runtime (live capacity re-splitting during
    /// table re-partitioning).  Lowering the budget below `bytes_in_use`
    /// does not free anything here; it only makes further allocations fail
    /// until the owner evicts back under the new budget.
    pub fn set_capacity(&mut self, capacity_bytes: Option<usize>) {
        self.config.capacity_bytes = capacity_bytes;
    }

    /// Current accounting snapshot.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// Bytes currently handed out (rounded to class sizes).
    pub fn bytes_in_use(&self) -> usize {
        self.stats.bytes_in_use
    }

    /// Would an allocation of `size` bytes fit under the capacity budget
    /// right now?
    pub fn would_fit(&self, size: usize) -> bool {
        let block = Self::block_bytes_for(size);
        match self.config.capacity_bytes {
            Some(cap) => self.stats.bytes_in_use + block <= cap,
            None => true,
        }
    }

    /// The number of accounted bytes an allocation of `size` bytes consumes.
    pub fn block_bytes_for(size: usize) -> usize {
        let class = class_for_size(size);
        if class.is_huge() {
            size
        } else {
            class_size(class)
        }
    }

    /// Allocate a block able to hold `size` bytes.
    ///
    /// Returns `None` when the capacity budget would be exceeded — the
    /// partition reacts by evicting the LRU element and retrying, which is
    /// exactly the eviction loop of the paper's INSERT path.
    pub fn allocate(&mut self, size: usize) -> Option<ValueHandle> {
        let class = class_for_size(size);
        let block_bytes = if class.is_huge() {
            size
        } else {
            class_size(class)
        };
        if let Some(cap) = self.config.capacity_bytes {
            if self.stats.bytes_in_use + block_bytes > cap {
                self.stats.capacity_refusals += 1;
                return None;
            }
        }

        let ptr = if class.is_huge() {
            self.allocate_huge(size)
        } else {
            self.allocate_classed(class)
        };

        self.stats.bytes_in_use += block_bytes;
        self.stats.blocks_in_use += 1;
        self.stats.total_allocs += 1;
        Some(ValueHandle {
            ptr,
            len: size,
            class,
            block_bytes,
        })
    }

    /// Return a block to the allocator.
    ///
    /// # Panics
    /// Panics (in debug builds) if accounting would go negative, which means
    /// a double free.
    pub fn free(&mut self, handle: ValueHandle) {
        debug_assert!(self.stats.bytes_in_use >= handle.block_bytes, "double free");
        debug_assert!(self.stats.blocks_in_use >= 1, "double free");
        self.stats.bytes_in_use -= handle.block_bytes;
        self.stats.blocks_in_use -= 1;
        self.stats.total_frees += 1;
        if handle.class.is_huge() {
            let layout = Self::huge_layout(handle.len);
            // SAFETY: the pointer was produced by `allocate_huge` with the
            // same layout and has not been freed before (checked by the
            // accounting asserts above).
            unsafe { dealloc(handle.ptr.as_ptr(), layout) };
        } else {
            self.free_lists[handle.class.0].push(handle.ptr);
        }
    }

    /// Drain the remote free stack for `class` into the local free list,
    /// settling the accounting the remote pushers could not touch.
    /// Returns the number of blocks reclaimed.
    pub fn reclaim_remote_class(&mut self, class: SizeClass) -> usize {
        let mut reclaimed = 0usize;
        // Detach the whole chain in one exchange, then walk it exclusively.
        let drain = self.remote.pop_all(class);
        for ptr in drain {
            self.free_lists[class.0].push(ptr);
            reclaimed += 1;
        }
        if reclaimed > 0 {
            let bytes = reclaimed * class_size(class);
            debug_assert!(self.stats.bytes_in_use >= bytes, "remote double free");
            debug_assert!(self.stats.blocks_in_use >= reclaimed, "remote double free");
            self.stats.bytes_in_use -= bytes;
            self.stats.blocks_in_use -= reclaimed;
            self.stats.total_frees += reclaimed as u64;
            self.stats.remote_reclaims += reclaimed as u64;
        }
        reclaimed
    }

    /// Drain every class's remote stack.  Called on allocation misses for
    /// the missing class automatically; call it explicitly before reading
    /// final accounting or dropping the allocator while remote threads may
    /// have freed blocks.
    pub fn reclaim_remote(&mut self) -> usize {
        (0..NUM_CLASSES)
            .map(|c| self.reclaim_remote_class(SizeClass(c)))
            .sum()
    }

    fn allocate_classed(&mut self, class: SizeClass) -> NonNull<u8> {
        if let Some(ptr) = self.free_lists[class.0].pop() {
            self.stats.freelist_hits += 1;
            return ptr;
        }
        // Local list empty: pull back anything other threads returned
        // before reserving a fresh chunk.
        if self.reclaim_remote_class(class) > 0 {
            self.stats.freelist_hits += 1;
            return self.free_lists[class.0]
                .pop()
                .expect("reclaim_remote_class pushed at least one block");
        }
        self.grow_class(class);
        self.free_lists[class.0]
            .pop()
            .expect("grow_class always adds at least one block")
    }

    /// Reserve a new chunk from the global allocator and carve it into
    /// blocks of `class`.
    fn grow_class(&mut self, class: SizeClass) {
        let block = class_size(class);
        let chunk_bytes = self.config.chunk_bytes.max(block);
        let blocks = chunk_bytes / block;
        let layout =
            Layout::from_size_align(blocks * block, BLOCK_ALIGN).expect("chunk layout is valid");
        // SAFETY: layout has non-zero size (block >= 8, blocks >= 1).
        let base = unsafe { alloc(layout) };
        let Some(base) = NonNull::new(base) else {
            handle_alloc_error(layout)
        };
        self.stats.bytes_reserved += layout.size();
        for i in 0..blocks {
            // SAFETY: i * block stays inside the freshly allocated chunk.
            let ptr = unsafe { base.as_ptr().add(i * block) };
            self.free_lists[class.0]
                .push(NonNull::new(ptr).expect("offset of non-null is non-null"));
        }
        self.chunks.push(Chunk { ptr: base, layout });
    }

    fn huge_layout(size: usize) -> Layout {
        Layout::from_size_align(size.max(1), BLOCK_ALIGN).expect("huge layout is valid")
    }

    fn allocate_huge(&mut self, size: usize) -> NonNull<u8> {
        let layout = Self::huge_layout(size);
        // SAFETY: layout has non-zero size.
        let ptr = unsafe { alloc(layout) };
        let Some(ptr) = NonNull::new(ptr) else {
            handle_alloc_error(layout)
        };
        self.stats.bytes_reserved += layout.size();
        ptr
    }
}

impl Drop for SlabAllocator {
    fn drop(&mut self) {
        // Settle any blocks still parked on the remote stack so the
        // accounting check below sees them as freed.
        self.reclaim_remote();
        // All slab chunks go back to the global allocator.  Outstanding
        // huge blocks would leak; the partition frees every element before
        // dropping its allocator, so treat leftovers as a logic error in
        // debug builds.
        debug_assert_eq!(
            self.stats.blocks_in_use, 0,
            "allocator dropped with {} live blocks",
            self.stats.blocks_in_use
        );
        for chunk in self.chunks.drain(..) {
            // SAFETY: each chunk was allocated with exactly this layout and
            // is freed exactly once here.
            unsafe { dealloc(chunk.ptr.as_ptr(), chunk.layout) };
        }
    }
}

impl Default for SlabAllocator {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl core::fmt::Debug for SlabAllocator {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SlabAllocator")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .field("chunks", &self.chunks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_write_read_free() {
        let mut a = SlabAllocator::unbounded();
        let h = a.allocate(8).unwrap();
        assert_eq!(h.len(), 8);
        assert!(!h.is_empty());
        assert_eq!(h.block_bytes(), 8);
        // SAFETY: single-threaded test, block freshly allocated.
        unsafe {
            h.copy_from(&42u64.to_le_bytes());
            assert_eq!(h.as_slice(), &42u64.to_le_bytes());
        }
        a.free(h);
        assert_eq!(a.bytes_in_use(), 0);
    }

    #[test]
    fn capacity_budget_is_enforced_and_reported() {
        let mut a = SlabAllocator::new(SlabConfig::with_capacity(64));
        let h1 = a.allocate(32).unwrap();
        let h2 = a.allocate(32).unwrap();
        assert!(a.allocate(8).is_none());
        assert_eq!(a.stats().capacity_refusals, 1);
        assert!(!a.would_fit(8));
        a.free(h1);
        assert!(a.would_fit(8));
        let h3 = a.allocate(8).unwrap();
        a.free(h2);
        a.free(h3);
    }

    #[test]
    fn freelist_reuses_blocks() {
        let mut a = SlabAllocator::unbounded();
        let h = a.allocate(100).unwrap();
        let first_ptr = h.as_ptr();
        a.free(h);
        let h2 = a.allocate(100).unwrap();
        assert_eq!(h2.as_ptr(), first_ptr, "freed block should be reused");
        assert_eq!(a.stats().freelist_hits, 1);
        a.free(h2);
    }

    #[test]
    fn distinct_live_blocks_do_not_overlap() {
        let mut a = SlabAllocator::unbounded();
        let mut handles = Vec::new();
        for i in 0..1000usize {
            let h = a.allocate(24).unwrap();
            // SAFETY: block freshly allocated, single-threaded.
            unsafe { h.copy_from(&(i as u64).to_le_bytes()) };
            handles.push(h);
        }
        // Verify every block still holds its own value (no overlap).
        for (i, h) in handles.iter().enumerate() {
            // SAFETY: blocks are live and not concurrently written.
            let got = unsafe { u64::from_le_bytes(h.as_slice()[..8].try_into().unwrap()) };
            assert_eq!(got, i as u64);
        }
        let mut addrs: Vec<u64> = handles.iter().map(|h| h.addr()).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 1000, "duplicate block addresses");
        for h in handles {
            a.free(h);
        }
        assert_eq!(a.stats().outstanding(), 0);
    }

    #[test]
    fn huge_allocations_round_trip() {
        let mut a = SlabAllocator::unbounded();
        let size = crate::size_class::MAX_CLASS_BYTES + 4096;
        let h = a.allocate(size).unwrap();
        assert_eq!(h.block_bytes(), size);
        assert!(h.len() == size);
        // SAFETY: freshly allocated block, single-threaded.
        unsafe { h.copy_from(&[0xAB; 128]) };
        a.free(h);
        assert_eq!(a.bytes_in_use(), 0);
    }

    #[test]
    fn zero_sized_values_still_get_distinct_addresses() {
        let mut a = SlabAllocator::unbounded();
        let h1 = a.allocate(0).unwrap();
        let h2 = a.allocate(0).unwrap();
        assert!(h1.is_empty());
        assert_ne!(h1.addr(), h2.addr());
        a.free(h1);
        a.free(h2);
    }

    #[test]
    fn accounting_tracks_class_rounding() {
        let mut a = SlabAllocator::unbounded();
        let h = a.allocate(100).unwrap();
        assert_eq!(a.bytes_in_use(), 128);
        assert_eq!(SlabAllocator::block_bytes_for(100), 128);
        a.free(h);
    }

    #[test]
    fn handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ValueHandle>();
        fn assert_send<T: Send>() {}
        assert_send::<SlabAllocator>();
    }

    #[test]
    fn blocks_are_aligned() {
        let mut a = SlabAllocator::unbounded();
        for size in [1usize, 8, 24, 100, 4096] {
            let h = a.allocate(size).unwrap();
            let align = alignment_for(h.block_bytes()) as u64;
            assert_eq!(h.addr() % align, 0, "size={size} align={align}");
            a.free(h);
        }
        assert_eq!(alignment_for(8), 8);
        assert_eq!(alignment_for(16), 16);
        assert_eq!(alignment_for(4096), 16);
    }
}
