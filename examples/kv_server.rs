//! Run CPSERVER on a TCP port and drive it with the bundled load generator
//! over the paper's binary LOOKUP/INSERT protocol, then do the same for
//! LOCKSERVER — a miniature of the paper's §7 experiment on one machine.
//!
//! Run with `cargo run --release --example kv_server`.

use cphash_suite::kvserver::{CpServer, CpServerConfig, LockServer, LockServerConfig};
use cphash_suite::loadgen::tcp::{run_tcp_load, TcpLoadOptions};
use cphash_suite::loadgen::WorkloadSpec;

fn main() {
    let spec = WorkloadSpec {
        working_set_bytes: 1 << 20,
        capacity_bytes: 1 << 20,
        operations: 200_000,
        insert_ratio: 0.3,
        prefill: false,
        ..Default::default()
    };

    // --- CPSERVER --------------------------------------------------------
    let mut cpserver = CpServer::start(CpServerConfig {
        client_threads: 2,
        partitions: 2,
        capacity_bytes: Some(spec.capacity_bytes),
        typical_value_bytes: 8,
        ..Default::default()
    })
    .expect("start CPSERVER");
    println!("CPSERVER listening on {}", cpserver.addr());

    let load = TcpLoadOptions {
        addr: cpserver.addr(),
        threads: 2,
        connections_per_thread: 4,
        pipeline: 64,
    };
    let result = run_tcp_load(&spec, &load).expect("load run");
    println!(
        "CPSERVER  : {:>10.0} requests/s over TCP ({} requests, {:.1}% lookup hit rate)\n",
        result.throughput(),
        result.operations,
        100.0 * result.lookup_hits as f64 / result.lookups.max(1) as f64
    );
    let table_stats = cpserver.table_stats();
    println!(
        "            server-side: {} inserts, {} lookups, {} evictions",
        table_stats.inserts, table_stats.lookups, table_stats.evictions
    );
    cpserver.shutdown();

    // --- LOCKSERVER ------------------------------------------------------
    let mut lockserver = LockServer::start(LockServerConfig {
        worker_threads: 4,
        partitions: 256,
        capacity_bytes: Some(spec.capacity_bytes),
        typical_value_bytes: 8,
        ..Default::default()
    })
    .expect("start LOCKSERVER");
    println!("LOCKSERVER listening on {}", lockserver.addr());
    let result = run_tcp_load(
        &spec,
        &TcpLoadOptions {
            addr: lockserver.addr(),
            threads: 2,
            connections_per_thread: 4,
            pipeline: 64,
        },
    )
    .expect("load run");
    println!(
        "LOCKSERVER: {:>10.0} requests/s over TCP ({} requests)",
        result.throughput(),
        result.operations
    );
    lockserver.shutdown();

    println!("\n(as in the paper's §7, the gap between the two servers is much smaller than the raw hash-table gap: TCP processing dominates)");
}
