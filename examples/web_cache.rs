//! The paper's motivating workload: an in-process page-render cache
//! (the memcached use case) with skewed, Zipf-distributed popularity,
//! comparing CPHash and LockHash side by side on identical request streams.
//!
//! Run with `cargo run --release --example web_cache`.

use cphash_suite::loadgen::{
    run_cphash, run_lockhash, DriverOptions, KeyDistribution, WorkloadSpec,
};
use cphash_suite::EvictionPolicy;

fn main() {
    // 4 MB of cached page fragments, but only 1 MB of cache budget: the LRU
    // list has to keep the popular fragments resident.
    let spec = WorkloadSpec {
        working_set_bytes: 4 << 20,
        capacity_bytes: 1 << 20,
        value_bytes: 8,
        insert_ratio: 0.1, // mostly reads, occasional re-renders
        operations: 1_000_000,
        batch: 512,
        distribution: KeyDistribution::Zipf(0.99),
        prefill: true,
        seed: 42,
    };

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let pairs = (threads / 2).clamp(1, 8);

    println!(
        "web-cache workload: 4 MB of fragments, 1 MB cache, Zipf(0.99) popularity, 10% re-render"
    );
    println!("running {} client threads against each design\n", pairs);

    let cp_opts = DriverOptions {
        client_threads: pairs,
        partitions: pairs,
        eviction: EvictionPolicy::Lru,
        ..Default::default()
    };
    let lh_opts = DriverOptions {
        client_threads: pairs * 2,
        partitions: 1024,
        eviction: EvictionPolicy::Lru,
        ..Default::default()
    };

    let cp = run_cphash(&spec, &cp_opts);
    let lh = run_lockhash(&spec, &lh_opts);

    println!(
        "CPHash   : {:>12.0} requests/s, hit rate {:>5.1}%",
        cp.throughput(),
        cp.hit_rate() * 100.0
    );
    println!(
        "LockHash : {:>12.0} requests/s, hit rate {:>5.1}%",
        lh.throughput(),
        lh.hit_rate() * 100.0
    );
    println!(
        "speedup  : {:.2}x (the skewed, cache-resident hot set is exactly where partition locality pays off)",
        cp.throughput() / lh.throughput().max(1.0)
    );
    println!(
        "evictions: cphash {} / lockhash {} (both caches stay within the 1 MB budget)",
        cp.table_stats.evictions, lh.table_stats.evictions
    );
}
