//! One typed operations API, three backends.
//!
//! The same function — byte-string keys, get/insert/delete, a pipelined
//! window — runs unchanged against the in-process table, CPSERVER over TCP
//! (kvproto v2, negotiated at connect), and a memcached-style cluster with
//! client-side partitioning, because all three implement the `KvClient`
//! trait.
//!
//! Run with `cargo run --release --example typed_api`.

use cphash_suite::kvserver::{CpServer, CpServerConfig, MemcacheCluster, MemcacheConfig};
use cphash_suite::{
    Completion, CompletionKind, CpHash, CpHashConfig, KeyRef, KvClient, KvOp, PartitionedClient,
    RemoteClient,
};

/// A miniature session-cache workload, written once against the trait.
fn session_cache_demo(client: &mut dyn KvClient) {
    println!("--- backend: {} ---", client.backend());

    // Pipelined warm-up: store 1,000 sessions without waiting one by one.
    let window = client.recommended_window();
    let mut completions: Vec<Completion> = Vec::new();
    for user in 0..1_000u32 {
        let key = format!("session:{user:06}");
        let value = format!("token-{user:x}");
        client.submit(KvOp::Insert(
            KeyRef::Bytes(key.as_bytes()),
            value.as_bytes(),
        ));
        if client.pending_ops() >= window {
            client.poll_completions(&mut completions);
        }
    }
    client
        .drain_completions(&mut completions)
        .expect("backend alive");
    let stored = completions
        .iter()
        .filter(|c| c.kind == CompletionKind::Inserted)
        .count();
    println!("stored {stored} sessions (window {window})");

    // Blocking point operations for the request path.
    let hit = client
        .get_blocking(KeyRef::Bytes(b"session:000042"))
        .expect("backend alive")
        .expect("session present");
    println!(
        "session:000042 -> {}",
        String::from_utf8_lossy(hit.as_slice())
    );

    // Log out user 42: delete, then observe the miss.
    assert!(client
        .delete_blocking(KeyRef::Bytes(b"session:000042"))
        .expect("backend alive"));
    assert_eq!(
        client
            .get_blocking(KeyRef::Bytes(b"session:000042"))
            .expect("backend alive"),
        None
    );
    println!("session:000042 deleted; subsequent get misses\n");
}

fn main() {
    // 1. In-process: message-passing lanes to pinned server threads.
    let (mut table, mut clients) = CpHash::new(CpHashConfig::new(2, 1));
    session_cache_demo(&mut clients[0]);
    drop(clients);
    table.shutdown();

    // 2. CPSERVER over TCP, kvproto v2 negotiated at connect.
    let mut server = CpServer::start(CpServerConfig {
        client_threads: 2,
        partitions: 2,
        ..Default::default()
    })
    .expect("start CPSERVER");
    let mut remote = RemoteClient::connect(server.addr()).expect("connect");
    println!(
        "(negotiated kvproto v{} with {})",
        remote.protocol_version(),
        server.addr()
    );
    session_cache_demo(&mut remote);
    drop(remote);
    server.shutdown();

    // 3. Memcached-style cluster, keys partitioned client-side (§7).
    let mut cluster = MemcacheCluster::start(MemcacheConfig {
        instances: 2,
        ..Default::default()
    })
    .expect("start cluster");
    let mut partitioned = PartitionedClient::connect(&cluster.addrs()).expect("connect cluster");
    session_cache_demo(&mut partitioned);
    drop(partitioned);
    cluster.shutdown();

    println!("same code, three backends — that is the point.");
}
