//! Demonstrates why asynchronous batching matters (paper §3.4, §6.1): the
//! same workload is run with different outstanding-request windows, from a
//! fully synchronous one-at-a-time client to deep pipelines.
//!
//! Run with `cargo run --release --example batching_pipeline`.

use cphash_suite::loadgen::{run_cphash, DriverOptions, WorkloadSpec};

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let pairs = (threads / 2).clamp(1, 8);
    let opts = DriverOptions {
        client_threads: pairs,
        partitions: pairs,
        ..Default::default()
    };

    println!("CPHash throughput vs outstanding-request window ({pairs} clients, {pairs} servers, 1 MB working set)\n");
    println!(
        "{:>10} {:>16} {:>12}",
        "window", "throughput (q/s)", "vs window=1"
    );

    let mut baseline = None;
    for window in [1usize, 8, 64, 256, 1024, 4096] {
        let spec = WorkloadSpec {
            working_set_bytes: 1 << 20,
            capacity_bytes: 1 << 20,
            operations: 400_000,
            batch: window,
            ..Default::default()
        };
        let result = run_cphash(&spec, &opts);
        let throughput = result.throughput();
        let base = *baseline.get_or_insert(throughput);
        println!(
            "{:>10} {:>16.0} {:>11.2}x",
            window,
            throughput,
            throughput / base
        );
    }

    println!("\nWith a window of 1 every operation pays a full round trip to the server thread;");
    println!("with hundreds outstanding, requests pack eight per cache line and all server");
    println!(
        "threads stay busy simultaneously — this is the asynchrony the paper's design leans on."
    );
}
