//! Reproduce the Figure 6/7 story on a small scale: replay the logical
//! memory accesses of CPHash and LockHash operations through the software
//! cache model and print the per-function miss breakdown.
//!
//! Run with `cargo run --release --example cache_model`.

use cphash_suite::cachesim::opmodel::{simulate_cphash, simulate_lockhash, OpModelParams};
use cphash_suite::cachesim::{CacheConfig, CostModel};

fn main() {
    // The paper's Figure 6/7 configuration, with a reduced operation count
    // so the example finishes in a couple of seconds.
    let params = OpModelParams {
        cache: CacheConfig::paper_machine(),
        operations: 100_000,
        ..OpModelParams::default()
    };

    println!(
        "simulating {} operations, 1 MB working set, 30% inserts, on the modelled 80-core machine\n",
        params.operations
    );

    let lockhash = simulate_lockhash(&params);
    let cphash = simulate_cphash(&params);

    println!("{}", lockhash.to_table("LOCKHASH (per operation)"));
    println!(
        "{}",
        cphash
            .client
            .to_table("CPHASH client thread (per operation)")
    );
    println!(
        "{}",
        cphash
            .server
            .to_table("CPHASH server thread (per operation)")
    );

    let cost = CostModel::default();
    let lockhash_est = cost.estimate(&lockhash.total(), lockhash.operations, 160);
    let client_est = cost.estimate(&cphash.client.total(), cphash.client.operations, 80);
    let server_est = cost.estimate(&cphash.server.total(), cphash.server.operations, 80);

    println!(
        "estimated cycles/op:  cphash client {:>6.0}   cphash server {:>6.0}   lockhash {:>6.0}",
        client_est.cycles_per_op, server_est.cycles_per_op, lockhash_est.cycles_per_op
    );
    println!("estimated L3 miss cost: cphash {:>4.0} cycles vs lockhash {:>4.0} cycles (contention makes LockHash's misses dearer)",
        client_est.l3_miss_cost, lockhash_est.l3_miss_cost);
    println!("paper (Figure 6):     client 1126, server 672, lockhash 3664 cycles/op; miss costs 381 vs 1421 cycles");
    println!("\nThe point of the figure survives the substitution: LockHash spends its time on");
    println!("lock words and shared bucket lines bouncing between caches, while CPHash pays a");
    println!("small, mostly-local cost plus a heavily amortized message line per operation.");
}
