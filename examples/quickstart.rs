//! Quickstart: create a CPHash table, insert and look up values, watch
//! eviction work, and shut down cleanly.
//!
//! Run with `cargo run --release --example quickstart`.

use cphash_suite::{CpHash, CpHashConfig, EvictionPolicy};

fn main() {
    // A table with 4 partitions (one server thread each) and 2 client
    // handles, limited to 64 KiB of values with LRU eviction — a miniature
    // version of the key/value cache the paper targets.
    let config = CpHashConfig::new(4, 2)
        .with_capacity(64 * 1024, 8)
        .with_eviction(EvictionPolicy::Lru);
    let (mut table, mut clients) = CpHash::new(config);
    println!(
        "started a CPHash table with {} partitions",
        table.partitions()
    );

    // --- Basic operations through the synchronous API -------------------
    let client = &mut clients[0];
    client.insert(1, b"first value").unwrap();
    client.insert(2, b"second value").unwrap();
    assert_eq!(client.get(1).unwrap().unwrap().as_slice(), b"first value");
    assert!(client.get(999).unwrap().is_none());
    assert!(client.delete(2).unwrap());
    println!("synchronous insert / get / delete all work");

    // --- The pipelined API: what the benchmarks and CPSERVER use --------
    // Queue a few thousand operations without waiting for each one; the
    // client packs requests eight-per-cache-line and keeps every server
    // thread busy at once.
    let mut tokens = Vec::new();
    for key in 0..10_000u64 {
        tokens.push(client.submit_insert(key, &key.to_le_bytes()));
    }
    let mut completions = Vec::new();
    client.drain(&mut completions).unwrap();
    println!("pipelined {} inserts", completions.len());

    // Because the table only holds 64 KiB (8,192 values of 8 bytes), the
    // oldest keys were evicted along the way.
    let mut hits = 0;
    for key in 0..10_000u64 {
        if client.get(key).unwrap().is_some() {
            hits += 1;
        }
    }
    println!("{hits} of 10000 keys survived under the 64 KiB budget (LRU keeps the newest)");

    // The second client handle can be used from another thread.
    let mut other = clients.pop().unwrap();
    let worker = std::thread::spawn(move || {
        other.insert(424242, b"from the other client").unwrap();
        other.get(424242).unwrap().is_some()
    });
    assert!(worker.join().unwrap());
    println!("a second client handle worked from its own thread");

    // Table statistics come from the server threads.
    let stats = table.partition_stats();
    println!(
        "table stats: {} inserts, {} lookups, {} evictions, hit rate {:.1}%",
        stats.inserts,
        stats.lookups,
        stats.evictions,
        stats.hit_rate() * 100.0
    );

    drop(clients);
    table.shutdown();
    println!("table shut down cleanly");
}
