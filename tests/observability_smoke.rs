//! Smoke tests for the observability plane: a live CPSERVER under TCP load
//! must serve parseable, monotone Prometheus metrics over both the HTTP
//! stats endpoint and the kvproto v2 STATS opcode.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use cphash_suite::kvserver::{
    CpServer, CpServerConfig, LockServer, LockServerConfig, MemcacheCluster, MemcacheConfig,
};
use cphash_suite::loadgen::tcp::{run_tcp_load, TcpLoadOptions};
use cphash_suite::loadgen::WorkloadSpec;
use cphash_suite::perfmon::{parse_prometheus_text, ParsedSample};
use cphash_suite::RemoteClient;

/// GET a path from the stats endpoint and return (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes())
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("response has a head");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

/// Scrape `/metrics` and parse the exposition.
fn scrape(addr: SocketAddr) -> Vec<ParsedSample> {
    let (status, body) = http_get(addr, "/metrics");
    assert!(status.starts_with("HTTP/1.0 200"), "{status}");
    parse_prometheus_text(&body).expect("scrape parses")
}

fn sample_value(samples: &[ParsedSample], name: &str) -> Option<f64> {
    samples
        .iter()
        .find(|s| s.name == name && s.labels.is_empty())
        .map(|s| s.value)
}

#[test]
fn stats_endpoint_serves_monotone_metrics_under_load() {
    let mut server = CpServer::start(CpServerConfig {
        client_threads: 2,
        partitions: 2,
        capacity_bytes: Some(64 * 1024),
        typical_value_bytes: 8,
        stats_addr: Some("127.0.0.1:0".parse().unwrap()),
        ..Default::default()
    })
    .unwrap();
    let stats_addr = server.stats_addr().expect("stats endpoint is enabled");
    let data_addr = server.addr();

    let spec = WorkloadSpec {
        working_set_bytes: 64 * 1024,
        capacity_bytes: 64 * 1024,
        operations: 20_000,
        insert_ratio: 0.3,
        prefill: false,
        ..Default::default()
    };
    let load = std::thread::spawn(move || {
        run_tcp_load(
            &spec,
            &TcpLoadOptions {
                addr: data_addr,
                threads: 2,
                connections_per_thread: 2,
                pipeline: 32,
            },
        )
        .unwrap()
    });

    // Scrape mid-run: poll until the request counter moves, proving the
    // endpoint answers while the data plane is busy.
    let mut mid = scrape(stats_addr);
    while sample_value(&mid, "cphash_requests_total").unwrap_or(0.0) == 0.0 && !load.is_finished() {
        std::thread::sleep(std::time::Duration::from_millis(5));
        mid = scrape(stats_addr);
    }

    let result = load.join().unwrap();
    assert_eq!(result.operations, spec.operations);
    let end = scrape(stats_addr);

    // The acceptance families are all present.
    for family in [
        "cphash_requests_total",
        "cphash_lookups_total",
        "cphash_inserts_total",
        "cphash_connections_total",
        "cphash_batch_rounds_total",
        "cphash_batch_occupancy",
        "cphash_queue_depth",
        "cphash_migration_chunks_total",
        "cphash_migration_pacer_rate",
        "cphash_retries_emitted_total",
        "cphash_request_latency_ns_count",
        "cphash_frontend_wakeups_total",
    ] {
        assert!(
            end.iter().any(|s| s.name == family),
            "family {family} missing from scrape"
        );
    }
    // Per-stage trace histograms are exported per stage label even while
    // tracing is off (all-zero until enabled).
    for stage in [
        "ring_enqueue",
        "drain",
        "prepare",
        "prefetch",
        "execute",
        "reply_publish",
    ] {
        assert!(
            end.iter().any(|s| s.name == "cphash_stage_cycles_count"
                && s.labels.contains(&format!("stage=\"{stage}\""))),
            "stage {stage} missing from scrape"
        );
    }

    // Every counter sample is monotone between the two scrapes.
    for before in mid
        .iter()
        .filter(|s| s.name.ends_with("_total") || s.name.ends_with("_count"))
    {
        let after = end
            .iter()
            .find(|s| s.name == before.name && s.labels == before.labels)
            .unwrap_or_else(|| panic!("{} vanished between scrapes", before.name));
        assert!(
            after.value >= before.value,
            "{}{} went backwards: {} -> {}",
            before.name,
            before.labels,
            before.value,
            after.value
        );
    }
    // And the final request count accounts for the whole workload.
    assert!(
        sample_value(&end, "cphash_requests_total").unwrap() >= spec.operations as f64,
        "request counter undercounts the workload"
    );

    let (status, _) = http_get(stats_addr, "/nope");
    assert!(status.starts_with("HTTP/1.0 404"), "{status}");
    server.shutdown();
}

#[test]
fn stats_opcode_answers_on_every_server() {
    // The wire STATS request returns the same exposition the HTTP endpoint
    // serves, on all three servers, without any HTTP listener configured.
    fn fetch_and_check(addr: SocketAddr) -> Vec<ParsedSample> {
        let mut client = RemoteClient::connect(addr).unwrap();
        assert_eq!(client.protocol_version(), 2);
        let text = client.fetch_stats().unwrap();
        let samples = parse_prometheus_text(&text).expect("wire stats parse");
        assert!(
            samples.iter().any(|s| s.name == "cphash_requests_total"),
            "wire stats carry the request counter"
        );
        samples
    }

    let mut cpserver = CpServer::start(CpServerConfig {
        client_threads: 1,
        partitions: 2,
        ..Default::default()
    })
    .unwrap();
    let samples = fetch_and_check(cpserver.addr());
    // The STATS round-trip itself is counted as an admin command.
    assert!(sample_value(&samples, "cphash_admin_commands_total").is_some());
    cpserver.shutdown();

    let mut lockserver = LockServer::start(LockServerConfig {
        worker_threads: 1,
        partitions: 16,
        ..Default::default()
    })
    .unwrap();
    fetch_and_check(lockserver.addr());
    lockserver.shutdown();

    let mut cluster = MemcacheCluster::start(MemcacheConfig {
        instances: 1,
        ..Default::default()
    })
    .unwrap();
    fetch_and_check(cluster.addrs()[0]);
    cluster.shutdown();
}

#[test]
fn stats_opcode_is_refused_on_v1_connections() {
    use cphash_suite::{KvError, OpError};

    let mut server = CpServer::start(CpServerConfig::default()).unwrap();
    let mut client = RemoteClient::connect_capped(server.addr(), 1).unwrap();
    assert_eq!(client.protocol_version(), 1);
    match client.fetch_stats() {
        Err(KvError::Op(OpError::Unsupported)) => {}
        other => panic!("v1 stats must be Unsupported, got {other:?}"),
    }
    server.shutdown();
}
