//! The acceptance test for the unified typed operations API: one shared
//! scenario — byte-string keys, get/insert/delete, pipelined window —
//! driven through the [`KvClient`] trait against
//!
//! 1. the in-process table,
//! 2. CPSERVER over TCP speaking kvproto v2, and
//! 3. the memcached-style baseline cluster behind a client-side
//!    partitioning client,
//!
//! with identical observable results; plus both directions of version
//! skew: a v1 client against a v2 server, and a v2 client against v1-only
//! servers (graceful HELLO downgrade *and* the drop-and-reconnect
//! fallback).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

use cphash_suite::kvserver::{CpServer, CpServerConfig, MemcacheCluster, MemcacheConfig};
use cphash_suite::loadgen::{run_anykey_mixed, AnyKeyMixOptions};
use cphash_suite::{
    CpHash, CpHashConfig, KeyRef, KvClient, KvError, OpError, PartitionedClient, RemoteClient,
};

fn scenario() -> AnyKeyMixOptions {
    AnyKeyMixOptions {
        operations: 20_000,
        distinct_keys: 2_000,
        value_bytes: 24,
        set_ratio: 0.3,
        delete_ratio: 0.1,
        window: 64,
        ..Default::default()
    }
}

/// The short deterministic get/insert/delete script every backend must
/// agree on, exercised through the blocking trait helpers.
fn run_script(client: &mut dyn KvClient) -> Vec<String> {
    let mut log = Vec::new();
    let mut note = |s: String| log.push(s);
    note(format!(
        "miss:{:?}",
        client.get_blocking(KeyRef::Bytes(b"user:alpha")).unwrap()
    ));
    assert!(client
        .insert_blocking(KeyRef::Bytes(b"user:alpha"), b"A")
        .unwrap());
    assert!(client
        .insert_blocking(KeyRef::Hash(42), b"forty-two")
        .unwrap());
    note(format!(
        "hit:{:?}",
        client
            .get_blocking(KeyRef::Bytes(b"user:alpha"))
            .unwrap()
            .map(|v| v.as_slice().to_vec())
    ));
    note(format!(
        "hit42:{:?}",
        client
            .get_blocking(KeyRef::Hash(42))
            .unwrap()
            .map(|v| v.as_slice().to_vec())
    ));
    note(format!(
        "del:{}",
        client
            .delete_blocking(KeyRef::Bytes(b"user:alpha"))
            .unwrap()
    ));
    note(format!(
        "del-again:{}",
        client
            .delete_blocking(KeyRef::Bytes(b"user:alpha"))
            .unwrap()
    ));
    note(format!(
        "post-del:{:?}",
        client.get_blocking(KeyRef::Bytes(b"user:alpha")).unwrap()
    ));
    note(format!(
        "del42:{}",
        client.delete_blocking(KeyRef::Hash(42)).unwrap()
    ));
    log
}

#[test]
fn one_scenario_three_backends_identical_results() {
    // --- in-process -----------------------------------------------------
    let (mut table, mut clients) = CpHash::new(CpHashConfig::new(2, 1));
    let in_proc_script = run_script(&mut clients[0]);
    let in_proc = run_anykey_mixed(&mut clients[0], &scenario()).unwrap();
    drop(clients);
    table.shutdown();

    // --- CPSERVER over TCP (kvproto v2) ---------------------------------
    let mut server = CpServer::start(CpServerConfig {
        client_threads: 2,
        partitions: 2,
        ..Default::default()
    })
    .unwrap();
    let mut remote = RemoteClient::connect(server.addr()).unwrap();
    assert_eq!(remote.protocol_version(), 2, "fresh server negotiates v2");
    let remote_script = run_script(&mut remote);
    let cpserver = run_anykey_mixed(&mut remote, &scenario()).unwrap();
    assert!(server.metrics().deletes() > 0);
    drop(remote);
    server.shutdown();

    // --- memcached-style cluster, client-side partitioning --------------
    let mut cluster = MemcacheCluster::start(MemcacheConfig {
        instances: 2,
        ..Default::default()
    })
    .unwrap();
    let mut partitioned = PartitionedClient::connect(&cluster.addrs()).unwrap();
    assert_eq!(partitioned.shards(), 2);
    let cluster_script = run_script(&mut partitioned);
    let memcache = run_anykey_mixed(&mut partitioned, &scenario()).unwrap();
    drop(partitioned);
    cluster.shutdown();

    // Identical observable results everywhere.
    assert_eq!(in_proc_script, remote_script);
    assert_eq!(in_proc_script, cluster_script);
    assert_eq!(in_proc.observation(), cpserver.observation());
    assert_eq!(in_proc.observation(), memcache.observation());
    assert!(in_proc.get_hits > 0 && in_proc.delete_hits > 0);
    assert_eq!(in_proc.failures, 0);
}

/// A v1 client (pre-versioning frames, no handshake) must still complete
/// u64 lookups and inserts against a v2 server.
#[test]
fn v1_client_against_v2_server() {
    use bytes::BytesMut;
    use cphash_suite::kvproto::{encode_insert, encode_lookup, ResponseDecoder};

    let mut server = CpServer::start(CpServerConfig::default()).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut decoder = ResponseDecoder::new();
    let mut wire = BytesMut::new();
    encode_insert(&mut wire, 7, b"legacy value");
    encode_lookup(&mut wire, 7);
    encode_lookup(&mut wire, 8);
    stream.write_all(&wire).unwrap();
    let mut responses = Vec::new();
    let mut buf = [0u8; 4096];
    while responses.len() < 2 {
        if let Some(r) = decoder.next_response().unwrap() {
            responses.push(r);
            continue;
        }
        let n = stream.read(&mut buf).unwrap();
        assert!(n > 0, "server closed a v1 connection");
        decoder.feed(&buf[..n]);
    }
    assert_eq!(responses[0].value.as_deref(), Some(&b"legacy value"[..]));
    assert_eq!(responses[1].value, None);

    // The capped RemoteClient is the same wire dialect; DELETE degrades to
    // a typed Unsupported failure instead of desyncing the stream.
    let mut v1 = RemoteClient::connect_capped(server.addr(), 1).unwrap();
    assert_eq!(v1.protocol_version(), 1);
    assert!(v1.insert_blocking(KeyRef::Hash(9), b"nine").unwrap());
    assert_eq!(
        v1.get_blocking(KeyRef::Hash(9))
            .unwrap()
            .unwrap()
            .as_slice(),
        b"nine"
    );
    // Byte keys ride the client-side envelope in v1 mode.
    assert!(v1.insert_blocking(KeyRef::Bytes(b"k:1"), b"v1").unwrap());
    assert_eq!(
        v1.get_blocking(KeyRef::Bytes(b"k:1"))
            .unwrap()
            .unwrap()
            .as_slice(),
        b"v1"
    );
    assert_eq!(
        v1.delete_blocking(KeyRef::Hash(9)),
        Err(KvError::Op(OpError::Unsupported))
    );
    drop(v1);
    server.shutdown();
}

/// A v2 client against a server capped at v1: the HELLO is acked with
/// version 1 and the same connection continues in legacy framing.
#[test]
fn v2_client_downgrades_gracefully_against_capped_server() {
    let mut server = CpServer::start(CpServerConfig {
        max_protocol: 1,
        ..Default::default()
    })
    .unwrap();
    let mut client = RemoteClient::connect(server.addr()).unwrap();
    assert_eq!(client.protocol_version(), 1, "HELLO acked down to v1");
    assert!(client.insert_blocking(KeyRef::Hash(5), b"five").unwrap());
    assert_eq!(
        client
            .get_blocking(KeyRef::Hash(5))
            .unwrap()
            .unwrap()
            .as_slice(),
        b"five"
    );
    assert!(client.insert_blocking(KeyRef::Bytes(b"bk"), b"bv").unwrap());
    assert_eq!(
        client
            .get_blocking(KeyRef::Bytes(b"bk"))
            .unwrap()
            .unwrap()
            .as_slice(),
        b"bv"
    );
    assert_eq!(client.get_blocking(KeyRef::Bytes(b"absent")).unwrap(), None);
    drop(client);
    server.shutdown();
}

/// A v2 client against a *pre-versioning* server that has never heard of
/// the handshake: the server drops the connection on the magic byte and
/// the client transparently reconnects speaking v1.
#[test]
fn v2_client_falls_back_when_a_v1_only_server_drops_the_handshake() {
    // Minimal legacy server: first bad opcode closes the connection,
    // otherwise it answers lookups with key bytes for even keys.
    fn spawn_legacy_server() -> SocketAddr {
        use cphash_suite::kvproto::{encode_response, RequestDecoder, RequestKind};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                std::thread::spawn(move || {
                    let mut decoder = RequestDecoder::new();
                    let mut buf = [0u8; 4096];
                    let mut out = bytes::BytesMut::new();
                    let mut requests = Vec::new();
                    loop {
                        let n = match stream.read(&mut buf) {
                            Ok(0) | Err(_) => return,
                            Ok(n) => n,
                        };
                        decoder.feed(&buf[..n]);
                        requests.clear();
                        if decoder.drain(&mut requests).is_err() {
                            return; // drop on protocol violation, like the real v1 servers
                        }
                        out.clear();
                        for req in &requests {
                            if req.kind == RequestKind::Lookup {
                                if req.key % 2 == 0 {
                                    encode_response(&mut out, Some(&req.key.to_le_bytes()));
                                } else {
                                    encode_response(&mut out, None);
                                }
                            }
                        }
                        if !out.is_empty() && stream.write_all(&out).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        addr
    }

    let addr = spawn_legacy_server();
    let mut client = RemoteClient::connect(addr).unwrap();
    assert_eq!(client.protocol_version(), 1, "fell back after the drop");
    assert_eq!(
        client
            .get_blocking(KeyRef::Hash(4))
            .unwrap()
            .unwrap()
            .as_slice(),
        &4u64.to_le_bytes()
    );
    assert_eq!(client.get_blocking(KeyRef::Hash(3)).unwrap(), None);
}
