//! Concurrency stress tests spanning the whole stack: many client threads,
//! capacity pressure, reference-count safety under eviction, and clean
//! shutdown while traffic is in flight.

use std::sync::Arc;

use cphash_suite::loadgen::{run_cphash, run_lockhash, DriverOptions, WorkloadSpec};
use cphash_suite::{CompletionKind, CpHash, CpHashConfig, LockHash, LockHashConfig};

#[test]
fn many_clients_hammer_one_cphash_table() {
    let clients = 4;
    let (mut table, handles) =
        CpHash::new(CpHashConfig::new(4, clients).with_capacity(256 * 1024, 8));
    let workers: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(i, mut client)| {
            std::thread::spawn(move || {
                let mut completions = Vec::new();
                let mut hits = 0u64;
                // Interleave pipelined inserts and lookups over a shared key
                // range so clients collide on partitions constantly.
                for round in 0..20u64 {
                    for key in 0..2_000u64 {
                        client.submit_insert(key, &(key + round).to_le_bytes());
                        client.submit_lookup((key + i as u64 * 17) % 2_000);
                    }
                    completions.clear();
                    client.drain(&mut completions).unwrap();
                    for c in &completions {
                        if let CompletionKind::LookupHit(v) = &c.kind {
                            // Any hit must be a value some thread wrote for
                            // some round: value - key must be < 20.
                            let value = u64::from_le_bytes(v.as_slice().try_into().unwrap());
                            assert!(value >= value.saturating_sub(20));
                            hits += 1;
                        }
                    }
                }
                hits
            })
        })
        .collect();
    let total_hits: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert!(total_hits > 0);
    table.shutdown();
    let stats = table.partition_stats();
    assert!(stats.inserts >= 4 * 20 * 2_000);
}

#[test]
fn values_held_across_eviction_remain_readable() {
    // The §3.2 dangling-pointer scenario: a client holds a looked-up value
    // while other traffic evicts it; the bytes must stay valid until the
    // reference is released.  The sync API releases references internally,
    // so this test drives the pattern through interleaved pipelined clients.
    let (mut table, mut handles) = CpHash::new(CpHashConfig::new(2, 2).with_capacity(2 * 1024, 8));
    let mut writer = handles.pop().unwrap();
    let mut reader = handles.pop().unwrap();

    // Seed some values.
    for key in 0..64u64 {
        assert!(reader.insert(key, &key.to_le_bytes()).unwrap());
    }
    // Reader pipelines lookups while the writer floods the table with new
    // keys, forcing every old element to be evicted.
    let writer_thread = std::thread::spawn(move || {
        for key in 1_000..4_000u64 {
            writer.insert(key, &key.to_le_bytes()).unwrap();
        }
        writer
    });
    let mut completions = Vec::new();
    let mut observed_hits = 0;
    for _ in 0..50 {
        for key in 0..64u64 {
            reader.submit_lookup(key);
        }
        completions.clear();
        reader.drain(&mut completions).unwrap();
        for c in &completions {
            if let CompletionKind::LookupHit(v) = &c.kind {
                let value = u64::from_le_bytes(v.as_slice().try_into().unwrap());
                assert!(value < 64, "value bytes were corrupted or reused: {value}");
                observed_hits += 1;
            }
        }
    }
    let _writer = writer_thread.join().unwrap();
    // Early rounds hit before eviction caught up.
    assert!(observed_hits > 0);
    table.shutdown();
    let stats = table.partition_stats();
    assert!(stats.evictions > 0);
}

#[test]
fn lockhash_sustains_many_threads_on_few_partitions() {
    let table = Arc::new(LockHash::new(
        LockHashConfig::new(2).with_capacity(64 * 1024, 8),
    ));
    let workers: Vec<_> = (0..8u64)
        .map(|t| {
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                let mut buf = Vec::new();
                for i in 0..20_000u64 {
                    let key = (t * 37 + i) % 4_096;
                    if i % 3 == 0 {
                        table.insert(key, &key.to_le_bytes());
                    } else if table.lookup(key, &mut buf) {
                        assert_eq!(buf, key.to_le_bytes());
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    assert!(
        table.lock_stats().contended() > 0,
        "two partitions and eight threads must contend"
    );
    assert!(table.bytes_in_use() <= 64 * 1024);
}

#[test]
fn drivers_complete_under_capacity_pressure() {
    // End-to-end run of both benchmark drivers with a capacity much smaller
    // than the working set (heavy eviction) — the Figure 9 regime.
    let spec = WorkloadSpec {
        working_set_bytes: 256 * 1024,
        capacity_bytes: 32 * 1024,
        operations: 60_000,
        batch: 256,
        ..Default::default()
    };
    let cp = run_cphash(&spec, &DriverOptions::new(2, 2));
    let lh = run_lockhash(&spec, &DriverOptions::new(2, 32));
    assert_eq!(cp.operations, spec.operations);
    assert_eq!(lh.operations, spec.operations);
    assert!(cp.table_stats.evictions > 0);
    assert!(lh.table_stats.evictions > 0);
    // With capacity = 1/8 of the working set, hit rates sit well below 1.
    assert!(cp.hit_rate() < 0.9);
    assert!(lh.hit_rate() < 0.9);
}

#[test]
fn shutdown_with_outstanding_requests_reports_server_gone() {
    let (mut table, mut clients) = CpHash::new(CpHashConfig::new(2, 1));
    let client = &mut clients[0];
    for key in 0..100u64 {
        client.submit_insert(key, &key.to_le_bytes());
    }
    // Shut the servers down while requests may still be queued client-side.
    table.shutdown();
    let mut completions = Vec::new();
    // Either everything already completed, or draining reports the dead
    // server — both are acceptable; what must not happen is a hang or panic.
    let _ = client.drain(&mut completions);
}
