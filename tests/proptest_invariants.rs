//! Property-based tests on the core data structures and protocols:
//!
//! * the partition behaves like a reference `HashMap` + LRU model under
//!   arbitrary operation sequences (and never exceeds its byte budget);
//! * the ring buffer never loses, duplicates or reorders messages for
//!   arbitrary push/pop interleavings;
//! * the wire protocol and the CPHash request encoding round-trip arbitrary
//!   frames;
//! * the allocator never hands out overlapping live blocks and its
//!   accounting always balances.

use std::collections::HashMap;

use bytes::BytesMut;
use proptest::prelude::*;

use cphash_suite::alloc::{SlabAllocator, SlabConfig};
use cphash_suite::channel::{ring, RingConfig};
use cphash_suite::hashcore::{EvictionPolicy, Partition, PartitionConfig};
use cphash_suite::kvproto::{
    encode_insert, encode_lookup, encode_response, RequestDecoder, RequestKind, ResponseDecoder,
};
use cphash_suite::table::protocol;

/// One partition operation for the model-based test.
#[derive(Debug, Clone)]
enum PartitionOp {
    Insert { key: u64, len: usize },
    Lookup { key: u64 },
    Delete { key: u64 },
}

fn partition_op() -> impl Strategy<Value = PartitionOp> {
    prop_oneof![
        (0u64..64, 1usize..64).prop_map(|(key, len)| PartitionOp::Insert { key, len }),
        (0u64..64).prop_map(|key| PartitionOp::Lookup { key }),
        (0u64..64).prop_map(|key| PartitionOp::Delete { key }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unbounded_partition_matches_hashmap_model(ops in prop::collection::vec(partition_op(), 1..400)) {
        let mut partition = Partition::new(PartitionConfig::new(32, None));
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            match *op {
                PartitionOp::Insert { key, len } => {
                    let value: Vec<u8> = (0..len).map(|b| (b as u8) ^ (i as u8)).collect();
                    partition.insert_copy(key, &value).unwrap();
                    model.insert(key, value);
                }
                PartitionOp::Lookup { key } => {
                    let mut buf = Vec::new();
                    let hit = partition.lookup_copy(key, &mut buf);
                    match model.get(&key) {
                        Some(expected) => {
                            prop_assert!(hit);
                            prop_assert_eq!(&buf, expected);
                        }
                        None => prop_assert!(!hit),
                    }
                }
                PartitionOp::Delete { key } => {
                    prop_assert_eq!(partition.delete(key), model.remove(&key).is_some());
                }
            }
            partition.check_invariants();
        }
        prop_assert_eq!(partition.len(), model.len());
    }

    #[test]
    fn bounded_partition_never_exceeds_budget_and_keeps_lru_order(
        ops in prop::collection::vec(partition_op(), 1..300),
        capacity in 64usize..512,
        random_eviction in any::<bool>(),
    ) {
        let policy = if random_eviction { EvictionPolicy::Random } else { EvictionPolicy::Lru };
        let mut partition = Partition::new(
            PartitionConfig::new(16, Some(capacity)).with_eviction(policy),
        );
        for op in &ops {
            match *op {
                PartitionOp::Insert { key, len } => {
                    // Values can exceed the budget; both error cases are legal.
                    let value = vec![0xA5u8; len];
                    let _ = partition.insert_copy(key, &value);
                }
                PartitionOp::Lookup { key } => {
                    let mut buf = Vec::new();
                    let _ = partition.lookup_copy(key, &mut buf);
                }
                PartitionOp::Delete { key } => {
                    let _ = partition.delete(key);
                }
            }
            prop_assert!(partition.bytes_in_use() <= capacity,
                "bytes_in_use {} exceeds capacity {}", partition.bytes_in_use(), capacity);
            partition.check_invariants();
        }
    }

    #[test]
    fn ring_buffer_preserves_every_message_in_order(
        chunks in prop::collection::vec(1usize..50, 1..40),
        capacity in 16usize..256,
    ) {
        let (mut tx, mut rx) = ring::<u64>(RingConfig::with_capacity(capacity));
        let mut sent = 0u64;
        let mut received = Vec::new();
        for chunk in chunks {
            // Push up to `chunk` messages (stopping early if full), flush,
            // then drain everything currently visible.
            for _ in 0..chunk {
                if tx.try_push(sent).is_ok() {
                    sent += 1;
                } else {
                    break;
                }
            }
            tx.flush();
            rx.pop_batch(&mut received, usize::MAX);
        }
        tx.flush();
        rx.pop_batch(&mut received, usize::MAX);
        prop_assert_eq!(received.len() as u64, sent);
        for (i, v) in received.iter().enumerate() {
            prop_assert_eq!(*v, i as u64, "messages reordered");
        }
    }

    #[test]
    fn kv_wire_protocol_roundtrips_arbitrary_frames(
        frames in prop::collection::vec(
            (any::<bool>(), 0u64..=cphash_suite::kvproto::MAX_KEY, prop::collection::vec(any::<u8>(), 0..200)),
            1..30
        ),
        split in 1usize..64,
    ) {
        // Encode a stream of frames, then decode it in arbitrary-sized
        // slices; the decoded sequence must match exactly.
        let mut wire = BytesMut::new();
        for (is_lookup, key, value) in &frames {
            if *is_lookup {
                encode_lookup(&mut wire, *key);
            } else {
                encode_insert(&mut wire, *key, value);
            }
        }
        let mut decoder = RequestDecoder::new();
        let mut decoded = Vec::new();
        for piece in wire.chunks(split) {
            decoder.feed(piece);
            decoder.drain(&mut decoded).unwrap();
        }
        prop_assert_eq!(decoded.len(), frames.len());
        for (req, (is_lookup, key, value)) in decoded.iter().zip(frames.iter()) {
            prop_assert_eq!(req.key, *key);
            if *is_lookup {
                prop_assert_eq!(req.kind, RequestKind::Lookup);
            } else {
                prop_assert_eq!(req.kind, RequestKind::Insert);
                prop_assert_eq!(&req.value, value);
            }
        }
    }

    #[test]
    fn kv_responses_roundtrip(values in prop::collection::vec(prop::option::of(prop::collection::vec(any::<u8>(), 1..100)), 1..20)) {
        let mut wire = BytesMut::new();
        for v in &values {
            encode_response(&mut wire, v.as_deref());
        }
        let mut decoder = ResponseDecoder::new();
        decoder.feed(&wire);
        for v in &values {
            let decoded = decoder.next_response().unwrap().expect("frame present");
            prop_assert_eq!(&decoded.value, v);
        }
        prop_assert!(decoder.next_response().unwrap().is_none());
    }

    #[test]
    fn cphash_request_words_roundtrip(
        key in 0u64..=cphash_suite::MAX_KEY,
        size in any::<u64>(),
        id in any::<u32>(),
        selector in 0u8..5,
    ) {
        use cphash_suite::hashcore::ElementId;
        let request = match selector {
            0 => protocol::Request::Lookup { key },
            1 => protocol::Request::Insert { key, size },
            2 => protocol::Request::Ready { id: ElementId(id) },
            3 => protocol::Request::Decref { id: ElementId(id) },
            _ => protocol::Request::Delete { key },
        };
        let (w0, w1) = protocol::encode(&request);
        prop_assert_eq!(protocol::decode(w0, w1), Some(request));
    }

    #[test]
    fn allocator_blocks_never_overlap_and_accounting_balances(
        sizes in prop::collection::vec(1usize..512, 1..100),
        capacity in prop::option::of(4096usize..65536),
    ) {
        let mut allocator = SlabAllocator::new(SlabConfig {
            capacity_bytes: capacity,
            ..SlabConfig::default()
        });
        let mut live: Vec<cphash_suite::alloc::ValueHandle> = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            if i % 3 == 2 && !live.is_empty() {
                // Free an arbitrary live block.
                let h = live.swap_remove(i % live.len());
                allocator.free(h);
            } else if let Some(handle) = allocator.allocate(size) {
                live.push(handle);
            }
            // No two live blocks may overlap.
            let mut ranges: Vec<(u64, u64)> = live
                .iter()
                .map(|h| (h.addr(), h.addr() + h.block_bytes().max(1) as u64))
                .collect();
            ranges.sort_unstable();
            for pair in ranges.windows(2) {
                prop_assert!(pair[0].1 <= pair[1].0, "live blocks overlap");
            }
            if let Some(cap) = capacity {
                prop_assert!(allocator.bytes_in_use() <= cap);
            }
        }
        let outstanding = live.len();
        for handle in live.drain(..) {
            allocator.free(handle);
        }
        prop_assert_eq!(allocator.bytes_in_use(), 0);
        prop_assert_eq!(allocator.stats().outstanding(), 0);
        prop_assert!(allocator.stats().total_frees >= outstanding as u64);
    }
}
