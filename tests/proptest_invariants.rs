//! Property-based tests on the core data structures and protocols:
//!
//! * the partition behaves like a reference `HashMap` + LRU model under
//!   arbitrary operation sequences (and never exceeds its byte budget);
//! * the ring buffer never loses, duplicates or reorders messages for
//!   arbitrary push/pop interleavings;
//! * the wire protocol and the CPHash request encoding round-trip arbitrary
//!   frames;
//! * the allocator never hands out overlapping live blocks and its
//!   accounting always balances;
//! * the latency histogram's summaries always agree with the raw samples,
//!   merging is equivalent to recording everything into one histogram, and
//!   the trace ring keeps exactly the most recent events across wrap-around.

use std::collections::HashMap;

use bytes::BytesMut;
use proptest::prelude::*;

use cphash_suite::alloc::{SlabAllocator, SlabConfig};
use cphash_suite::channel::{ring, RingConfig};
use cphash_suite::hashcore::{EvictionPolicy, Partition, PartitionConfig};
use cphash_suite::kvproto::{
    encode_insert, encode_lookup, encode_response, RequestDecoder, RequestKind, ResponseDecoder,
};
use cphash_suite::perfmon::{trace, LatencyHistogram, StageSpan, TraceStage};
use cphash_suite::table::protocol;

/// Latency-like samples spread across the histogram's full range: exact
/// zeros, small values, bucket boundaries (powers of two) and arbitrary
/// 64-bit values.
fn latency_sample() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        1u64..16,
        16u64..4096,
        (0u32..64).prop_map(|b| 1u64 << b),
        any::<u64>(),
    ]
}

/// The bucket upper bound `LatencyHistogram` assigns a value (the same
/// convention `nonzero_buckets` and `percentile` export).
fn expected_bound(value: u64) -> u64 {
    match 64 - value.leading_zeros() {
        0 => 0,
        64 => u64::MAX,
        bits => 1u64 << bits,
    }
}

/// One partition operation for the model-based test.
#[derive(Debug, Clone)]
enum PartitionOp {
    Insert { key: u64, len: usize },
    Lookup { key: u64 },
    Delete { key: u64 },
}

fn partition_op() -> impl Strategy<Value = PartitionOp> {
    prop_oneof![
        (0u64..64, 1usize..64).prop_map(|(key, len)| PartitionOp::Insert { key, len }),
        (0u64..64).prop_map(|key| PartitionOp::Lookup { key }),
        (0u64..64).prop_map(|key| PartitionOp::Delete { key }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unbounded_partition_matches_hashmap_model(ops in prop::collection::vec(partition_op(), 1..400)) {
        let mut partition = Partition::new(PartitionConfig::new(32, None));
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            match *op {
                PartitionOp::Insert { key, len } => {
                    let value: Vec<u8> = (0..len).map(|b| (b as u8) ^ (i as u8)).collect();
                    partition.insert_copy(key, &value).unwrap();
                    model.insert(key, value);
                }
                PartitionOp::Lookup { key } => {
                    let mut buf = Vec::new();
                    let hit = partition.lookup_copy(key, &mut buf);
                    match model.get(&key) {
                        Some(expected) => {
                            prop_assert!(hit);
                            prop_assert_eq!(&buf, expected);
                        }
                        None => prop_assert!(!hit),
                    }
                }
                PartitionOp::Delete { key } => {
                    prop_assert_eq!(partition.delete(key), model.remove(&key).is_some());
                }
            }
            partition.check_invariants();
        }
        prop_assert_eq!(partition.len(), model.len());
    }

    #[test]
    fn bounded_partition_never_exceeds_budget_and_keeps_lru_order(
        ops in prop::collection::vec(partition_op(), 1..300),
        capacity in 64usize..512,
        random_eviction in any::<bool>(),
    ) {
        let policy = if random_eviction { EvictionPolicy::Random } else { EvictionPolicy::Lru };
        let mut partition = Partition::new(
            PartitionConfig::new(16, Some(capacity)).with_eviction(policy),
        );
        for op in &ops {
            match *op {
                PartitionOp::Insert { key, len } => {
                    // Values can exceed the budget; both error cases are legal.
                    let value = vec![0xA5u8; len];
                    let _ = partition.insert_copy(key, &value);
                }
                PartitionOp::Lookup { key } => {
                    let mut buf = Vec::new();
                    let _ = partition.lookup_copy(key, &mut buf);
                }
                PartitionOp::Delete { key } => {
                    let _ = partition.delete(key);
                }
            }
            prop_assert!(partition.bytes_in_use() <= capacity,
                "bytes_in_use {} exceeds capacity {}", partition.bytes_in_use(), capacity);
            partition.check_invariants();
        }
    }

    #[test]
    fn inline_and_chain_partitions_are_observably_identical(
        ops in prop::collection::vec(partition_op(), 1..400),
        capacity in prop::option::of(128usize..512),
    ) {
        use cphash_suite::hashcore::BucketLayout;
        // Eight buckets under a 64-key space forces every inline bucket
        // line past its seven tagged slots, so overflow chaining and
        // slot promotion are exercised, not just the fast path.
        let mut chain = Partition::new(
            PartitionConfig::new(8, capacity).with_layout(BucketLayout::Chain),
        );
        let mut inline = Partition::new(
            PartitionConfig::new(8, capacity).with_layout(BucketLayout::Inline),
        );
        for (i, op) in ops.iter().enumerate() {
            match *op {
                PartitionOp::Insert { key, len } => {
                    let value: Vec<u8> = (0..len).map(|b| (b as u8) ^ (i as u8)).collect();
                    let a = chain.insert_copy(key, &value);
                    let b = inline.insert_copy(key, &value);
                    prop_assert_eq!(a.is_ok(), b.is_ok(), "insert outcome diverged for key {}", key);
                }
                PartitionOp::Lookup { key } => {
                    let mut buf_a = Vec::new();
                    let mut buf_b = Vec::new();
                    let hit_a = chain.lookup_copy(key, &mut buf_a);
                    let hit_b = inline.lookup_copy(key, &mut buf_b);
                    prop_assert_eq!(hit_a, hit_b, "hit/miss diverged for key {}", key);
                    prop_assert_eq!(buf_a, buf_b, "values diverged for key {}", key);
                }
                PartitionOp::Delete { key } => {
                    prop_assert_eq!(chain.delete(key), inline.delete(key));
                }
            }
            chain.check_invariants();
            inline.check_invariants();
        }
        prop_assert_eq!(chain.len(), inline.len());
        prop_assert_eq!(chain.bytes_in_use(), inline.bytes_in_use());
        // The layouts must also report themselves honestly: bucket-line
        // counters only ever tick under the inline layout.
        let chain_stats = chain.stats();
        prop_assert_eq!(chain_stats.inline_hits, 0);
        prop_assert_eq!(chain_stats.overflow_probes, 0);
        prop_assert_eq!(chain_stats.tag_false_positives, 0);
        let inline_stats = inline.stats();
        prop_assert_eq!(inline_stats.hits, chain_stats.hits);
        if inline_stats.hits > 0 {
            prop_assert!(
                inline_stats.inline_hits + inline_stats.overflow_probes > 0,
                "inline layout served hits without touching bucket lines"
            );
        }
    }

    #[test]
    fn ring_buffer_preserves_every_message_in_order(
        chunks in prop::collection::vec(1usize..50, 1..40),
        capacity in 16usize..256,
    ) {
        let (mut tx, mut rx) = ring::<u64>(RingConfig::with_capacity(capacity));
        let mut sent = 0u64;
        let mut received = Vec::new();
        for chunk in chunks {
            // Push up to `chunk` messages (stopping early if full), flush,
            // then drain everything currently visible.
            for _ in 0..chunk {
                if tx.try_push(sent).is_ok() {
                    sent += 1;
                } else {
                    break;
                }
            }
            tx.flush();
            rx.pop_batch(&mut received, usize::MAX);
        }
        tx.flush();
        rx.pop_batch(&mut received, usize::MAX);
        prop_assert_eq!(received.len() as u64, sent);
        for (i, v) in received.iter().enumerate() {
            prop_assert_eq!(*v, i as u64, "messages reordered");
        }
    }

    #[test]
    fn kv_wire_protocol_roundtrips_arbitrary_frames(
        frames in prop::collection::vec(
            (any::<bool>(), 0u64..=cphash_suite::kvproto::MAX_KEY, prop::collection::vec(any::<u8>(), 0..200)),
            1..30
        ),
        split in 1usize..64,
    ) {
        // Encode a stream of frames, then decode it in arbitrary-sized
        // slices; the decoded sequence must match exactly.
        let mut wire = BytesMut::new();
        for (is_lookup, key, value) in &frames {
            if *is_lookup {
                encode_lookup(&mut wire, *key);
            } else {
                encode_insert(&mut wire, *key, value);
            }
        }
        let mut decoder = RequestDecoder::new();
        let mut decoded = Vec::new();
        for piece in wire.chunks(split) {
            decoder.feed(piece);
            decoder.drain(&mut decoded).unwrap();
        }
        prop_assert_eq!(decoded.len(), frames.len());
        for (req, (is_lookup, key, value)) in decoded.iter().zip(frames.iter()) {
            prop_assert_eq!(req.key, *key);
            if *is_lookup {
                prop_assert_eq!(req.kind, RequestKind::Lookup);
            } else {
                prop_assert_eq!(req.kind, RequestKind::Insert);
                prop_assert_eq!(&req.value, value);
            }
        }
    }

    #[test]
    fn kv_responses_roundtrip(values in prop::collection::vec(prop::option::of(prop::collection::vec(any::<u8>(), 1..100)), 1..20)) {
        let mut wire = BytesMut::new();
        for v in &values {
            encode_response(&mut wire, v.as_deref());
        }
        let mut decoder = ResponseDecoder::new();
        decoder.feed(&wire);
        for v in &values {
            let decoded = decoder.next_response().unwrap().expect("frame present");
            prop_assert_eq!(&decoded.value, v);
        }
        prop_assert!(decoder.next_response().unwrap().is_none());
    }

    #[test]
    fn cphash_request_words_roundtrip(
        key in 0u64..=cphash_suite::MAX_KEY,
        size in any::<u64>(),
        id in any::<u32>(),
        selector in 0u8..5,
    ) {
        use cphash_suite::hashcore::ElementId;
        let request = match selector {
            0 => protocol::Request::Lookup { key },
            1 => protocol::Request::Insert { key, size },
            2 => protocol::Request::Ready { id: ElementId(id) },
            3 => protocol::Request::Decref { id: ElementId(id) },
            _ => protocol::Request::Delete { key },
        };
        let (w0, w1) = protocol::encode(&request);
        prop_assert_eq!(protocol::decode(w0, w1), Some(request));
    }

    #[test]
    fn allocator_blocks_never_overlap_and_accounting_balances(
        sizes in prop::collection::vec(1usize..512, 1..100),
        capacity in prop::option::of(4096usize..65536),
    ) {
        let mut allocator = SlabAllocator::new(SlabConfig {
            capacity_bytes: capacity,
            ..SlabConfig::default()
        });
        let mut live: Vec<cphash_suite::alloc::ValueHandle> = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            if i % 3 == 2 && !live.is_empty() {
                // Free an arbitrary live block.
                let h = live.swap_remove(i % live.len());
                allocator.free(h);
            } else if let Some(handle) = allocator.allocate(size) {
                live.push(handle);
            }
            // No two live blocks may overlap.
            let mut ranges: Vec<(u64, u64)> = live
                .iter()
                .map(|h| (h.addr(), h.addr() + h.block_bytes().max(1) as u64))
                .collect();
            ranges.sort_unstable();
            for pair in ranges.windows(2) {
                prop_assert!(pair[0].1 <= pair[1].0, "live blocks overlap");
            }
            if let Some(cap) = capacity {
                prop_assert!(allocator.bytes_in_use() <= cap);
            }
        }
        let outstanding = live.len();
        for handle in live.drain(..) {
            allocator.free(handle);
        }
        prop_assert_eq!(allocator.bytes_in_use(), 0);
        prop_assert_eq!(allocator.stats().outstanding(), 0);
        prop_assert!(allocator.stats().total_frees >= outstanding as u64);
    }

    #[test]
    fn latency_histogram_summaries_match_the_samples(
        samples in prop::collection::vec(latency_sample(), 1..300),
    ) {
        let mut h = LatencyHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().map(|&v| v as u128).sum::<u128>());
        prop_assert_eq!(h.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
        // Percentiles are monotone in the percentile and the top one bounds
        // every sample (bucket upper bounds are `>=` their contents).
        let pcts = [0.0, 10.0, 50.0, 90.0, 99.0, 100.0];
        let values: Vec<u64> = pcts.iter().map(|&p| h.percentile(p)).collect();
        for pair in values.windows(2) {
            prop_assert!(pair[0] <= pair[1], "percentiles regressed: {values:?}");
        }
        prop_assert!(*values.last().unwrap() >= h.max());
        // The exported buckets are exactly the per-bound sample counts.
        let mut expected: Vec<(u64, u64)> = Vec::new();
        let mut bounds: Vec<u64> = samples.iter().map(|&v| expected_bound(v)).collect();
        bounds.sort_unstable();
        for bound in bounds {
            match expected.last_mut() {
                Some((b, c)) if *b == bound => *c += 1,
                _ => expected.push((bound, 1)),
            }
        }
        prop_assert_eq!(h.nonzero_buckets().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn latency_histogram_merge_equals_recording_into_one(
        a in prop::collection::vec(latency_sample(), 0..200),
        b in prop::collection::vec(latency_sample(), 0..200),
    ) {
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for &v in &a {
            ha.record(v);
            combined.record(v);
        }
        for &v in &b {
            hb.record(v);
            combined.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), combined.count());
        prop_assert_eq!(ha.sum(), combined.sum());
        prop_assert_eq!(ha.min(), combined.min());
        prop_assert_eq!(ha.max(), combined.max());
        prop_assert_eq!(
            ha.nonzero_buckets().collect::<Vec<_>>(),
            combined.nonzero_buckets().collect::<Vec<_>>()
        );
        for pct in [0.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            prop_assert_eq!(ha.percentile(pct), combined.percentile(pct), "pct {}", pct);
        }
    }

    #[test]
    fn trace_ring_wraparound_keeps_the_most_recent_events(
        capacity in 1usize..64,
        events in 1usize..200,
    ) {
        use std::sync::atomic::{AtomicUsize, Ordering};

        // Ring capacity binds at a thread's first recorded event, so each
        // case runs on a fresh, uniquely named thread.
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let name = format!("proptest-trace-{}", CASE.fetch_add(1, Ordering::Relaxed));
        trace::set_ring_capacity(capacity);
        trace::set_trace_enabled(true);
        std::thread::Builder::new()
            .name(name.clone())
            .spawn(move || {
                for i in 0..events {
                    let span = StageSpan::begin(TraceStage::Execute);
                    span.finish(i as u32);
                }
            })
            .unwrap()
            .join()
            .unwrap();
        trace::set_trace_enabled(false);

        let report = trace::snapshot(usize::MAX);
        let thread = report
            .threads
            .iter()
            .find(|t| t.name == name)
            .expect("traced thread registered");
        prop_assert_eq!(thread.total, events as u64);
        prop_assert_eq!(thread.events.len(), events.min(capacity));
        // The retained window is the most recent events, oldest first: the
        // `ops` stamps must be the trailing run of the recorded sequence.
        let oldest_retained = events - thread.events.len();
        for (offset, event) in thread.events.iter().enumerate() {
            prop_assert_eq!(event.ops as usize, oldest_retained + offset);
            prop_assert_eq!(event.stage as usize, TraceStage::Execute as usize);
        }
        // Histograms are cumulative across wrap-around: every event counts.
        let mut recorded = 0u64;
        for t in &report.threads {
            if t.name == name {
                recorded = t.total;
            }
        }
        prop_assert!(report.stage(TraceStage::Execute).count() >= recorded);
    }
}
