//! Connection-churn and front-end scaling tests (ISSUE 3).
//!
//! An accept/close storm across workers must leak no file descriptors and
//! lose no responses, and the event-driven front-end's wake-ups must be
//! bounded by *activity*, not by how many (idle) connections a worker
//! holds.  The whole file honours `CPHASH_FRONTEND`, so CI runs it under
//! both the epoll and the busy-poll front-end.

use bytes::BytesMut;
use cphash_suite::kvproto::{encode_insert, encode_lookup, ResponseDecoder};
use cphash_suite::kvserver::reactor::{reactor_available, FrontendKind, Reactor};
use cphash_suite::kvserver::{
    CpServer, CpServerConfig, FrontendStats, LockServer, LockServerConfig, MemcacheCluster,
    MemcacheConfig,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Number of open file descriptors of this process (Linux); `None` where
/// /proc is unavailable.
fn open_fds() -> Option<usize> {
    std::fs::read_dir("/proc/self/fd")
        .ok()
        .map(|dir| dir.count())
}

fn roundtrip(addr: std::net::SocketAddr, key: u64) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut decoder = ResponseDecoder::new();
    let mut wire = BytesMut::new();
    encode_insert(&mut wire, key, &key.to_le_bytes());
    encode_lookup(&mut wire, key);
    stream.write_all(&wire).unwrap();
    let mut buf = [0u8; 4096];
    let value = loop {
        if let Some(resp) = decoder.next_response().unwrap() {
            break resp.value;
        }
        let n = stream.read(&mut buf).unwrap();
        assert!(n > 0, "server closed the connection mid-roundtrip");
        decoder.feed(&buf[..n]);
    };
    assert_eq!(
        value.as_deref(),
        Some(&key.to_le_bytes()[..]),
        "lost or corrupted response for key {key}"
    );
}

/// Wait until the process fd count settles back to (at most) `baseline`
/// plus some slack, proving the churned connections were all released.
fn assert_fds_settle(baseline: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    let slack = 4;
    let mut current = usize::MAX;
    while Instant::now() < deadline {
        match open_fds() {
            None => return, // no /proc: nothing to assert
            Some(n) if n <= baseline + slack => return,
            Some(n) => current = n,
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("fd leak: {current} open fds never settled back to ~{baseline}");
}

#[test]
fn cpserver_accept_close_storm_leaks_nothing() {
    let mut server = CpServer::start(CpServerConfig {
        client_threads: 2,
        partitions: 2,
        ..Default::default()
    })
    .unwrap();
    let addr = server.addr();
    let baseline = open_fds().unwrap_or(0);

    const ROUNDS: u64 = 8;
    const CONNS_PER_ROUND: u64 = 25;
    for round in 0..ROUNDS {
        // A burst of short-lived connections, each doing one write+read
        // cycle, all dropped at the end of the round.
        for c in 0..CONNS_PER_ROUND {
            roundtrip(addr, round * 1_000 + c);
        }
    }

    // Every churned connection was counted...
    assert!(
        server.metrics().connections() >= ROUNDS * CONNS_PER_ROUND,
        "accepted connections went missing"
    );
    // ...and every fd was released (the workers retire closed connections
    // and deregister them from their reactors).
    assert_fds_settle(baseline);

    // The server still serves new connections after the storm.
    roundtrip(addr, 999_999);
    server.shutdown();
}

#[test]
fn lockserver_accept_close_storm_leaks_nothing() {
    let mut server = LockServer::start(LockServerConfig {
        worker_threads: 2,
        partitions: 64,
        ..Default::default()
    })
    .unwrap();
    let addr = server.addr();
    let baseline = open_fds().unwrap_or(0);
    for round in 0..6u64 {
        for c in 0..20u64 {
            roundtrip(addr, round * 1_000 + c);
        }
    }
    assert_fds_settle(baseline);
    roundtrip(addr, 123_456);
    server.shutdown();
}

#[test]
fn memcache_accept_close_storm_leaks_nothing() {
    let mut cluster = MemcacheCluster::start(MemcacheConfig {
        instances: 1,
        ..Default::default()
    })
    .unwrap();
    let addr = cluster.addrs()[0];
    let baseline = open_fds().unwrap_or(0);
    for round in 0..6u64 {
        for c in 0..20u64 {
            roundtrip(addr, round * 1_000 + c);
        }
    }
    assert_fds_settle(baseline);
    roundtrip(addr, 77);
    cluster.shutdown();
}

#[test]
fn wakeups_bounded_by_activity_not_connection_count() {
    // This property only holds for a real readiness backend; the busy-poll
    // fallback (and `--frontend poll`) wakes per iteration by design.
    if !reactor_available(FrontendKind::Epoll) {
        eprintln!("skipping: no epoll on this host");
        return;
    }
    let mut server = CpServer::start(CpServerConfig {
        client_threads: 2,
        partitions: 2,
        frontend: FrontendKind::Epoll,
        ..Default::default()
    })
    .unwrap();
    let addr = server.addr();

    // Park an idle herd an order of magnitude larger than the activity.
    const IDLE: usize = 200;
    let idle: Vec<TcpStream> = (0..IDLE)
        .map(|_| TcpStream::connect(addr).unwrap())
        .collect();

    // Let the adoption wake-ups drain, then snapshot.
    std::thread::sleep(Duration::from_millis(200));
    let frontend = &server.metrics().frontend;
    let wakeups_before = frontend.wakeups();

    // Fixed activity: 40 pipelined batches on one connection.
    const BATCHES: u64 = 40;
    const PIPELINE: u64 = 50;
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut decoder = ResponseDecoder::new();
    let mut buf = [0u8; 64 * 1024];
    for b in 0..BATCHES {
        let mut wire = BytesMut::new();
        for i in 0..PIPELINE {
            encode_lookup(&mut wire, b * PIPELINE + i);
        }
        stream.write_all(&wire).unwrap();
        let mut received = 0;
        while received < PIPELINE {
            if let Some(_resp) = decoder.next_response().unwrap() {
                received += 1;
                continue;
            }
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0);
            decoder.feed(&buf[..n]);
        }
        // A small gap between batches: a connection-scanning front-end
        // would burn wake-ups here, an event-driven one sleeps.
        std::thread::sleep(Duration::from_millis(2));
    }
    let wakeups = frontend.wakeups() - wakeups_before;

    // Bounded by activity: a scan-per-iteration front-end with 200 idle
    // connections would register at least tens of thousands of wake-ups
    // over ~40 paced batches.  Allow a generous factor over the ideal
    // (~1 wake-up per batch arrival) for TCP segmentation, waker events
    // and accept traffic.
    let bound = BATCHES * 20 + 200;
    assert!(
        wakeups < bound,
        "{wakeups} wake-ups for {BATCHES} batches with {IDLE} idle connections (bound {bound})"
    );
    drop(idle);
    server.shutdown();
}

/// ISSUE 10 capability fallback: a server explicitly configured for the
/// io_uring front-end on a host whose kernel cannot provide it must come
/// up on epoll and serve correctly — not crash, not refuse to start.  The
/// `CPHASH_URING_DISABLE` hook makes io_uring look absent the same way a
/// failed `io_uring_setup` would (the backend-selection path is shared).
#[test]
fn uring_request_without_kernel_support_serves_on_epoll() {
    if std::env::var_os("CPHASH_URING_DISABLE").is_some() {
        // A suite-wide override owns the variable; this test needs to
        // control both its set and its removal.
        eprintln!("skipping: CPHASH_URING_DISABLE already set");
        return;
    }
    std::env::set_var("CPHASH_URING_DISABLE", "1");

    // The capability probe reports uring unavailable...
    assert!(
        !reactor_available(FrontendKind::Uring),
        "disable hook did not make io_uring look absent"
    );
    // ...a directly built reactor degrades instead of failing (to epoll,
    // or further to the busy-poll backend on hosts without epoll)...
    let reactor = Reactor::new(
        FrontendKind::Uring,
        std::sync::Arc::new(FrontendStats::default()),
    );
    assert_ne!(
        reactor.kind(),
        FrontendKind::Uring,
        "reactor claims uring while the kernel has none"
    );
    drop(reactor);

    // ...and a whole server asked for uring still starts and serves.
    let mut server = CpServer::start(CpServerConfig {
        client_threads: 2,
        partitions: 2,
        frontend: FrontendKind::Uring,
        ..Default::default()
    })
    .unwrap();
    let addr = server.addr();
    for key in 0..50u64 {
        roundtrip(addr, key);
    }
    server.shutdown();

    std::env::remove_var("CPHASH_URING_DISABLE");
}
