//! Migration invariants under concurrent load: while a table grows 2→4 and
//! shrinks 4→2 partitions, client threads keep issuing get/insert/remove,
//! and **no key may ever be lost, duplicated, or stale**.
//!
//! Each worker owns a disjoint key slice and tracks a local model of what it
//! wrote; any divergence between the table and the model — a miss for a
//! present key, a stale value, a delete disagreeing about presence, or a hit
//! after a delete (a resurrected duplicate) — fails the test immediately.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cphash_suite::migrate::RepartitionCoordinator;
use cphash_suite::{CpHash, CpHashConfig};

const WORKERS: usize = 3;
const KEYS_PER_WORKER: u64 = 300;

/// Deterministic per-worker operation stream.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[test]
fn grow_and_shrink_lose_no_keys_under_concurrent_load() {
    let mut config = CpHashConfig::new(2, WORKERS).with_max_partitions(4);
    config.migration_chunks = 32;
    let (mut table, clients) = CpHash::new(config);
    let mut coordinator = RepartitionCoordinator::new(table.take_control().expect("control"));
    let stop = Arc::new(AtomicBool::new(false));
    let total_ops = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(worker, mut client)| {
            let stop = Arc::clone(&stop);
            let total_ops = Arc::clone(&total_ops);
            std::thread::spawn(move || {
                // This worker exclusively owns keys ≡ worker (mod WORKERS).
                let mut model: HashMap<u64, u64> = HashMap::new();
                let mut rng = 0x9E37_79B9u64 ^ (worker as u64) << 32 | 1;
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let r = xorshift(&mut rng);
                    let key = (r >> 8) % KEYS_PER_WORKER * WORKERS as u64 + worker as u64;
                    match r % 10 {
                        0..=4 => {
                            let value = r >> 16;
                            assert!(
                                client.insert(key, &value.to_le_bytes()).unwrap(),
                                "insert of key {key} failed (unbounded table)"
                            );
                            model.insert(key, value);
                        }
                        5..=8 => match (client.get(key).unwrap(), model.get(&key)) {
                            (Some(got), Some(expected)) => assert_eq!(
                                got.as_slice(),
                                expected.to_le_bytes(),
                                "stale value for key {key}"
                            ),
                            (None, Some(_)) => panic!("key {key} lost"),
                            (Some(_), None) => panic!("key {key} resurrected after delete"),
                            (None, None) => {}
                        },
                        _ => {
                            let was_present = client.delete(key).unwrap();
                            assert_eq!(
                                was_present,
                                model.remove(&key).is_some(),
                                "delete of key {key} disagrees about presence"
                            );
                        }
                    }
                    ops += 1;
                }
                // Final sweep: every key the model holds must be present and
                // current; every key it does not hold must miss.
                for key in (worker as u64..)
                    .step_by(WORKERS)
                    .take(KEYS_PER_WORKER as usize)
                {
                    match (client.get(key).unwrap(), model.get(&key)) {
                        (Some(got), Some(expected)) => assert_eq!(
                            got.as_slice(),
                            expected.to_le_bytes(),
                            "stale value for key {key} after migrations"
                        ),
                        (None, Some(_)) => panic!("key {key} lost after migrations"),
                        (Some(_), None) => panic!("key {key} duplicated after migrations"),
                        (None, None) => {}
                    }
                }
                total_ops.fetch_add(ops, Ordering::Relaxed);
                (ops, client.migration_retries())
            })
        })
        .collect();

    // Let the workers build up state, then run a full grow/shrink cycle
    // (and a second one, to exercise repeated transitions) while they keep
    // hammering the table.
    std::thread::sleep(Duration::from_millis(100));
    let mut moved = 0usize;
    for &target in &[4usize, 2, 3, 2] {
        let report = coordinator.resize_to(target).unwrap();
        assert_eq!(report.to_partitions, target);
        assert_eq!(table.partitions(), target);
        moved += report.keys_moved;
        std::thread::sleep(Duration::from_millis(50));
    }

    stop.store(true, Ordering::Relaxed);
    let mut retries = 0u64;
    for worker in workers {
        let (_, worker_retries) = worker.join().unwrap();
        retries += worker_retries;
    }
    let ops = total_ops.load(Ordering::Relaxed);
    assert!(ops > 1_000, "workers made progress ({ops} ops)");
    assert!(moved > 0, "the transitions physically moved keys");

    table.shutdown();
    let stats = table.partition_stats();
    assert_eq!(
        stats.exported, stats.absorbed,
        "every exported key was absorbed exactly once"
    );
    assert!(stats.exported as usize >= moved);
    // Retries are timing-dependent (they only occur when an operation races
    // a chunk hand-off), so they are reported but not asserted.
    eprintln!(
        "migration stress: {ops} ops, {moved} keys moved, {retries} redirected operations, \
         {} exported / {} absorbed",
        stats.exported, stats.absorbed
    );
}
