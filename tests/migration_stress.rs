//! Migration invariants under concurrent load: while a table grows 2→4 and
//! shrinks 4→2 partitions, client threads keep issuing get/insert/remove,
//! and **no key may ever be lost, duplicated, or stale**.
//!
//! Each worker owns a disjoint key slice and tracks a local model of what it
//! wrote; any divergence between the table and the model — a miss for a
//! present key, a stale value, a delete disagreeing about presence, or a hit
//! after a delete (a resurrected duplicate) — fails the test immediately.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cphash_suite::migrate::{MigrationPacer, RepartitionCoordinator};
use cphash_suite::perfmon::LatencyHistogram;
use cphash_suite::{CpHash, CpHashConfig, MigrationPacing};

const WORKERS: usize = 3;

/// Keys per worker; `MIGRATION_STRESS_KEYS` overrides for the CI
/// sanitizer-friendly profile (smaller table, same fixed per-worker seeds).
fn keys_per_worker() -> u64 {
    std::env::var("MIGRATION_STRESS_KEYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

/// Deterministic per-worker operation stream.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[test]
fn grow_and_shrink_lose_no_keys_under_concurrent_load() {
    let mut config = CpHashConfig::new(2, WORKERS).with_max_partitions(4);
    config.migration_chunks = 32;
    let (mut table, clients) = CpHash::new(config);
    let mut coordinator = RepartitionCoordinator::new(table.take_control().expect("control"));
    let stop = Arc::new(AtomicBool::new(false));
    let total_ops = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(worker, mut client)| {
            let stop = Arc::clone(&stop);
            let total_ops = Arc::clone(&total_ops);
            let keys_per_worker = keys_per_worker();
            std::thread::spawn(move || {
                // This worker exclusively owns keys ≡ worker (mod WORKERS).
                let mut model: HashMap<u64, u64> = HashMap::new();
                let mut rng = 0x9E37_79B9u64 ^ (worker as u64) << 32 | 1;
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let r = xorshift(&mut rng);
                    let key = (r >> 8) % keys_per_worker * WORKERS as u64 + worker as u64;
                    match r % 10 {
                        0..=4 => {
                            let value = r >> 16;
                            assert!(
                                client.insert(key, &value.to_le_bytes()).unwrap(),
                                "insert of key {key} failed (unbounded table)"
                            );
                            model.insert(key, value);
                        }
                        5..=8 => match (client.get(key).unwrap(), model.get(&key)) {
                            (Some(got), Some(expected)) => assert_eq!(
                                got.as_slice(),
                                expected.to_le_bytes(),
                                "stale value for key {key}"
                            ),
                            (None, Some(_)) => panic!("key {key} lost"),
                            (Some(_), None) => panic!("key {key} resurrected after delete"),
                            (None, None) => {}
                        },
                        _ => {
                            let was_present = client.delete(key).unwrap();
                            assert_eq!(
                                was_present,
                                model.remove(&key).is_some(),
                                "delete of key {key} disagrees about presence"
                            );
                        }
                    }
                    ops += 1;
                }
                // Final sweep: every key the model holds must be present and
                // current; every key it does not hold must miss.
                for key in (worker as u64..)
                    .step_by(WORKERS)
                    .take(keys_per_worker as usize)
                {
                    match (client.get(key).unwrap(), model.get(&key)) {
                        (Some(got), Some(expected)) => assert_eq!(
                            got.as_slice(),
                            expected.to_le_bytes(),
                            "stale value for key {key} after migrations"
                        ),
                        (None, Some(_)) => panic!("key {key} lost after migrations"),
                        (Some(_), None) => panic!("key {key} duplicated after migrations"),
                        (None, None) => {}
                    }
                }
                total_ops.fetch_add(ops, Ordering::Relaxed);
                (ops, client.migration_retries())
            })
        })
        .collect();

    // Let the workers build up state, then run a full grow/shrink cycle
    // (and a second one, to exercise repeated transitions) while they keep
    // hammering the table.
    std::thread::sleep(Duration::from_millis(100));
    let mut moved = 0usize;
    for &target in &[4usize, 2, 3, 2] {
        let report = coordinator.resize_to(target).unwrap();
        assert_eq!(report.to_partitions, target);
        assert_eq!(table.partitions(), target);
        moved += report.keys_moved;
        std::thread::sleep(Duration::from_millis(50));
    }

    stop.store(true, Ordering::Relaxed);
    let mut retries = 0u64;
    for worker in workers {
        let (_, worker_retries) = worker.join().unwrap();
        retries += worker_retries;
    }
    let ops = total_ops.load(Ordering::Relaxed);
    assert!(ops > 1_000, "workers made progress ({ops} ops)");
    assert!(moved > 0, "the transitions physically moved keys");

    table.shutdown();
    let stats = table.partition_stats();
    assert_eq!(
        stats.exported, stats.absorbed,
        "every exported key was absorbed exactly once"
    );
    assert!(stats.exported as usize >= moved);
    // Retries are timing-dependent (they only occur when an operation races
    // a chunk hand-off), so they are reported but not asserted.
    eprintln!(
        "migration stress: {ops} ops, {moved} keys moved, {retries} redirected operations, \
         {} exported / {} absorbed",
        stats.exported, stats.absorbed
    );
}

/// Live migration under the staged batch pipeline at a deliberately odd,
/// non-default depth: migration control messages interleave with batched
/// data runs (runs are cut at every control message), so no key may be
/// lost, duplicated or served stale across a grow/shrink cycle.
#[test]
fn migration_under_non_default_batch_size_loses_no_keys() {
    const BATCH_WORKERS: usize = 2;
    let mut config = CpHashConfig::new(2, BATCH_WORKERS).with_max_partitions(4);
    config.migration_chunks = 32;
    config.pipeline = cphash_suite::ServerPipeline::BatchedPrefetch;
    config.batch_size = 5; // odd and tiny: every lane drain spans many runs
    let (mut table, clients) = CpHash::new(config);
    let mut coordinator = RepartitionCoordinator::new(table.take_control().expect("control"));
    let stop = Arc::new(AtomicBool::new(false));

    let workers: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(worker, mut client)| {
            let stop = Arc::clone(&stop);
            let keys_per_worker = keys_per_worker();
            std::thread::spawn(move || {
                let mut model: HashMap<u64, u64> = HashMap::new();
                let mut rng = 0xABCD_EF01u64 ^ ((worker as u64) << 32) | 1;
                while !stop.load(Ordering::Relaxed) {
                    let r = xorshift(&mut rng);
                    let key = (r >> 8) % keys_per_worker * BATCH_WORKERS as u64 + worker as u64;
                    match r % 8 {
                        0..=3 => {
                            let value = r >> 16;
                            assert!(client.insert(key, &value.to_le_bytes()).unwrap());
                            model.insert(key, value);
                        }
                        4..=6 => match (client.get(key).unwrap(), model.get(&key)) {
                            (Some(got), Some(expected)) => {
                                assert_eq!(got.as_slice(), expected.to_le_bytes())
                            }
                            (None, Some(_)) => panic!("key {key} lost"),
                            (Some(_), None) => panic!("key {key} resurrected"),
                            (None, None) => {}
                        },
                        _ => {
                            assert_eq!(client.delete(key).unwrap(), model.remove(&key).is_some());
                        }
                    }
                }
                for (key, expected) in &model {
                    let got = client.get(*key).unwrap().unwrap_or_else(|| {
                        panic!("key {key} lost after batched-pipeline migration")
                    });
                    assert_eq!(got.as_slice(), expected.to_le_bytes());
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(100));
    for &target in &[4usize, 2] {
        let report = coordinator.resize_to(target).unwrap();
        assert_eq!(report.to_partitions, target);
        std::thread::sleep(Duration::from_millis(50));
    }
    stop.store(true, Ordering::Relaxed);
    for worker in workers {
        worker.join().unwrap();
    }
    table.shutdown();
    let stats = table.partition_stats();
    assert_eq!(stats.exported, stats.absorbed);
}

/// Live migration must move keys correctly under *both* bucket layouts,
/// regardless of what `CPHASH_BUCKET_LAYOUT` says: exporting a key unlinks
/// it from one partition's bucket lines (or chains) and re-links it into
/// another's, so a grow/shrink cycle under load exercises every link,
/// unlink and inline-slot promotion path the layout has.
#[test]
fn migration_preserves_keys_under_both_bucket_layouts() {
    use cphash_suite::BucketLayout;
    for layout in [BucketLayout::Chain, BucketLayout::Inline] {
        let mut config = CpHashConfig::new(2, 1)
            .with_max_partitions(4)
            .with_bucket_layout(layout);
        config.migration_chunks = 32;
        let (mut table, mut clients) = CpHash::new(config);
        let mut coordinator = RepartitionCoordinator::new(table.take_control().expect("control"));
        let client = &mut clients[0];

        let keys = keys_per_worker() * WORKERS as u64;
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut rng = 0x1712_4C1Eu64 | 1;
        for key in 0..keys {
            assert!(client.insert(key, &key.to_le_bytes()).unwrap());
            model.insert(key, key);
        }

        let mut moved = 0usize;
        for &target in &[4usize, 2, 4] {
            let report = coordinator.resize_to(target).unwrap();
            assert_eq!(report.to_partitions, target);
            moved += report.keys_moved;
            // Churn between transitions so migrated buckets see fresh
            // inserts, overwrites and deletes in their new homes.
            for _ in 0..2_000 {
                let r = xorshift(&mut rng);
                let key = (r >> 8) % keys;
                match r % 10 {
                    0..=4 => {
                        let value = r >> 16;
                        assert!(client.insert(key, &value.to_le_bytes()).unwrap());
                        model.insert(key, value);
                    }
                    5..=8 => match (client.get(key).unwrap(), model.get(&key)) {
                        (Some(got), Some(expected)) => {
                            assert_eq!(got.as_slice(), expected.to_le_bytes())
                        }
                        (None, Some(_)) => panic!("key {key} lost ({layout:?})"),
                        (Some(_), None) => panic!("key {key} resurrected ({layout:?})"),
                        (None, None) => {}
                    },
                    _ => {
                        assert_eq!(client.delete(key).unwrap(), model.remove(&key).is_some());
                    }
                }
            }
        }
        assert!(moved > 0, "transitions moved keys ({layout:?})");

        for (key, expected) in &model {
            let got = client
                .get(*key)
                .unwrap()
                .unwrap_or_else(|| panic!("key {key} lost after migrations ({layout:?})"));
            assert_eq!(got.as_slice(), expected.to_le_bytes());
        }
        drop(clients);
        table.shutdown();
        let stats = table.partition_stats();
        assert_eq!(stats.exported, stats.absorbed, "{layout:?}");
        match layout {
            BucketLayout::Chain => assert_eq!(stats.inline_hits, 0),
            BucketLayout::Inline => assert!(
                stats.inline_hits > 0,
                "inline layout never hit a tagged slot"
            ),
        }
    }
}

/// While a *paced* resize runs, foreground operation latency must stay
/// bounded: the pacer spreads the chunk hand-offs out, so no synchronous
/// operation should ever stall for anything near the full transition time.
#[test]
fn paced_resize_keeps_foreground_p99_bounded() {
    let mut config = CpHashConfig::new(2, WORKERS).with_max_partitions(4);
    config.migration_chunks = 64;
    let (mut table, clients) = CpHash::new(config);
    let mut coordinator = RepartitionCoordinator::new(table.take_control().expect("control"));
    // 100 chunks/sec: a 10 ms hand-off interval, comfortably above the
    // natural per-chunk latency even on a loaded single-CPU host, so the
    // bucket genuinely paces (64 chunks ≈ 640 ms transition).
    let mut pacer = MigrationPacer::for_table(
        &table,
        MigrationPacing::Rate {
            chunks_per_sec: 100.0,
        },
    );
    let stop = Arc::new(AtomicBool::new(false));

    let workers: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(worker, mut client)| {
            let stop = Arc::clone(&stop);
            let keys_per_worker = keys_per_worker();
            std::thread::spawn(move || {
                let mut latencies = LatencyHistogram::new();
                let mut rng = 0xDEAD_BEEF ^ ((worker as u64) << 32) | 1;
                while !stop.load(Ordering::Relaxed) {
                    let r = xorshift(&mut rng);
                    let key = (r >> 8) % keys_per_worker * WORKERS as u64 + worker as u64;
                    let started = Instant::now();
                    if r.is_multiple_of(4) {
                        client.insert(key, &r.to_le_bytes()).unwrap();
                    } else {
                        let _ = client.get(key).unwrap();
                    }
                    latencies.record(started.elapsed().as_micros() as u64);
                }
                latencies
            })
        })
        .collect();

    // Let the load settle, then run a paced 2→4 grow under it.
    std::thread::sleep(Duration::from_millis(50));
    let report = coordinator
        .resize_to_paced(4, &mut pacer)
        .expect("paced grow");
    assert_eq!(report.to_partitions, 4);
    assert!(
        report.paced_waits > 0,
        "the finite budget never delayed a hand-off: {report:?}"
    );
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);

    let mut latencies = LatencyHistogram::new();
    for worker in workers {
        latencies.merge(&worker.join().expect("worker"));
    }
    assert!(
        latencies.count() > 500,
        "workers made progress ({} ops)",
        latencies.count()
    );
    let p99_us = latencies.percentile(99.0);
    // Generous for an oversubscribed CI host, but far below the paced
    // transition time (64 chunks at 100/s ≈ 640 ms): a foreground op that
    // blocked on the whole migration would blow straight through it.
    assert!(
        p99_us < 100_000,
        "foreground p99 {p99_us} µs during a paced resize (max {} µs)",
        latencies.max()
    );
    eprintln!(
        "paced resize p99: {} ops, p50 {} µs, p99 {p99_us} µs, max {} µs, {}",
        latencies.count(),
        latencies.percentile(50.0),
        latencies.max(),
        report
    );
    table.shutdown();
}

/// Growing the table re-splits the *global* byte budget over the new
/// partition count.  Before this fix every new partition inherited the old
/// per-partition share, so a 2→4 grow silently doubled the table's memory
/// budget.
#[test]
fn grow_resplits_the_global_capacity_budget() {
    const BUDGET: usize = 16 * 1024; // 2048 8-byte values
    let mut config = CpHashConfig::new(2, 1).with_max_partitions(4);
    config.capacity_bytes = Some(BUDGET);
    let (mut table, mut clients) = CpHash::new(config);
    let mut coordinator = RepartitionCoordinator::new(table.take_control().expect("control"));
    let client = &mut clients[0];

    // Overfill at 2 partitions, grow live, then overfill again at 4.
    for key in 0..4_000u64 {
        assert!(client.insert(key, &key.to_le_bytes()).unwrap());
    }
    let report = coordinator.resize_to(4).expect("grow");
    assert_eq!(report.to_partitions, 4);
    for key in 4_000..8_000u64 {
        assert!(client.insert(key, &key.to_le_bytes()).unwrap());
    }

    let survivors = (0..8_000u64)
        .filter(|&k| client.get(k).unwrap().is_some())
        .count();
    let max_elements = BUDGET / 8;
    // With the old per-partition share, 4 partitions retained ~2x the
    // budget (~4096 elements).  Re-splitting keeps the global budget: at
    // most ~2048, give or take hash skew.
    assert!(
        survivors <= max_elements * 5 / 4,
        "{survivors} survivors exceed the re-split global budget of {max_elements} elements"
    );
    assert!(
        survivors >= max_elements / 2,
        "{survivors} survivors — the table dropped far below its budget"
    );
    drop(clients);
    table.shutdown();
}
