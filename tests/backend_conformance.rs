//! Backend-agnostic conformance suite for the reactor contract (ISSUE 10).
//!
//! Every front-end backend (epoll, busy-poll, io_uring) must present the
//! same observable behaviour to the workers: level-triggered readiness,
//! registration/deregistration that takes effect, write-interest toggling
//! via `rearm`, waker delivery, and survival of an fd closed while still
//! armed.  The same scenarios run against every backend available on the
//! host, so a new backend cannot pass by being exercised only through its
//! own unit tests.
//!
//! The contract is asymmetric on purpose: *delivery* obligations (ready
//! data keeps firing until drained; deregistered tokens never fire) bind
//! every backend, while *quietness* obligations (no events without
//! readiness) bind only the readiness-based backends — the busy-poll
//! backend reports every registered token on every call by design, and
//! workers absorb the spurious wake-ups as `WouldBlock` reads.

use cphash_suite::kvserver::reactor::{
    raw_fd_of, reactor_available, FrontendKind, Reactor, Waker, WAKER_TOKEN,
};
use cphash_suite::kvserver::FrontendStats;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const BACKENDS: &[FrontendKind] = &[FrontendKind::Epoll, FrontendKind::Poll, FrontendKind::Uring];

/// Build a reactor of the requested kind, or `None` when the host cannot
/// run it (reported, so a skip is visible in the test output).
fn reactor_for(kind: FrontendKind) -> Option<Reactor> {
    if !reactor_available(kind) {
        eprintln!("skipping {kind}: backend unavailable on this host");
        return None;
    }
    let reactor = Reactor::new(kind, Arc::new(FrontendStats::default()));
    assert_eq!(
        reactor.kind(),
        kind,
        "requested backend was available but construction fell back"
    );
    Some(reactor)
}

/// A connected (server-side, client-side) socket pair, server side
/// non-blocking as workers configure it.
fn socket_pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
    let (server, _) = listener.accept().unwrap();
    server.set_nonblocking(true).unwrap();
    (server, client)
}

fn wait_for(reactor: &mut Reactor, token: usize, timeout: Duration) -> bool {
    let mut ready = Vec::new();
    let deadline = std::time::Instant::now() + timeout;
    loop {
        ready.clear();
        let _ = reactor.wait(&mut ready, Some(Duration::from_millis(10)));
        if ready.contains(&token) {
            return true;
        }
        if std::time::Instant::now() >= deadline {
            return false;
        }
    }
}

#[test]
fn readiness_is_level_triggered_until_deregistered() {
    for &kind in BACKENDS {
        let Some(mut reactor) = reactor_for(kind) else {
            continue;
        };
        // Quietness binds only the readiness-based backends (see module
        // docs); busy-poll reports registered tokens unconditionally.
        let readiness_based = kind != FrontendKind::Poll;
        let (server, mut client) = socket_pair();
        let fd = raw_fd_of(&server);
        reactor.register(fd, 5, false).unwrap();

        // Quiet socket: no readiness.
        if readiness_based {
            assert!(
                !wait_for(&mut reactor, 5, Duration::from_millis(50)),
                "{kind}: token ready with no data"
            );
        }

        client.write_all(b"payload").unwrap();
        assert!(
            wait_for(&mut reactor, 5, Duration::from_secs(2)),
            "{kind}: data did not make the token ready"
        );
        // Level-triggered: unread bytes keep the token firing on every
        // subsequent wait, not just the first one after arrival.
        for round in 0..3 {
            assert!(
                wait_for(&mut reactor, 5, Duration::from_secs(2)),
                "{kind}: unread data stopped firing on round {round}"
            );
        }
        // Drained socket: quiet again.
        let mut buf = [0u8; 64];
        let n = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"payload");
        if readiness_based {
            assert!(
                !wait_for(&mut reactor, 5, Duration::from_millis(50)),
                "{kind}: token still ready after the socket was drained"
            );
        }

        // Deregistered: new data must not surface the token again.
        reactor.deregister(fd, 5).unwrap();
        client.write_all(b"more").unwrap();
        assert!(
            !wait_for(&mut reactor, 5, Duration::from_millis(100)),
            "{kind}: deregistered token still delivered"
        );
    }
}

#[test]
fn write_interest_toggles_via_rearm() {
    for &kind in BACKENDS {
        let Some(mut reactor) = reactor_for(kind) else {
            continue;
        };
        let readiness_based = kind != FrontendKind::Poll;
        let (server, _client) = socket_pair();
        let fd = raw_fd_of(&server);
        reactor.register(fd, 9, false).unwrap();

        // Read-only interest on an idle socket: silent (readiness-based
        // backends only; busy-poll always reports and always retries
        // writes, so interest sets are moot for it by design).
        if readiness_based {
            assert!(
                !wait_for(&mut reactor, 9, Duration::from_millis(50)),
                "{kind}: read-only idle socket reported ready"
            );
        }
        // Adding write interest makes the (writable) socket fire.
        reactor.rearm(fd, 9, true).unwrap();
        assert!(
            wait_for(&mut reactor, 9, Duration::from_secs(2)),
            "{kind}: write interest did not report writability"
        );
        // Dropping write interest silences it again.
        reactor.rearm(fd, 9, false).unwrap();
        if readiness_based {
            assert!(
                !wait_for(&mut reactor, 9, Duration::from_millis(50)),
                "{kind}: writability still reported after rearm to read-only"
            );
        }
        reactor.deregister(fd, 9).unwrap();
    }
}

#[test]
fn waker_delivery_wakes_a_sleeping_reactor() {
    for &kind in BACKENDS {
        let Some(mut reactor) = reactor_for(kind) else {
            continue;
        };
        let waker = Waker::new(kind);
        let Some(fd) = waker.fd() else {
            // The busy-poll backend has no waker fd: its workers poll the
            // hand-off channel every iteration instead.  Nothing to conform.
            continue;
        };
        reactor.register(fd, WAKER_TOKEN, false).unwrap();

        let remote = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
        });
        assert!(
            wait_for(&mut reactor, WAKER_TOKEN, Duration::from_secs(2)),
            "{kind}: wake() did not surface WAKER_TOKEN"
        );
        t.join().unwrap();
        waker.drain();
        assert!(
            !wait_for(&mut reactor, WAKER_TOKEN, Duration::from_millis(50)),
            "{kind}: drained waker still firing"
        );
    }
}

#[test]
fn closing_an_armed_fd_does_not_wedge_the_reactor() {
    for &kind in BACKENDS {
        let Some(mut reactor) = reactor_for(kind) else {
            continue;
        };
        let (server, client) = socket_pair();
        let fd = raw_fd_of(&server);
        reactor.register(fd, 11, false).unwrap();

        // Close both ends while the registration is still armed.  Workers
        // normally deregister first; the contract here is only that a
        // misordered close cannot wedge or poison the reactor.
        drop(client);
        drop(server);
        let mut ready = Vec::new();
        let _ = reactor.wait(&mut ready, Some(Duration::from_millis(20)));
        // Deregistering the closed fd may fail (the kernel already dropped
        // it) but must not panic; either way the reactor keeps serving
        // other registrations.
        let _ = reactor.deregister(fd, 11);

        let (server2, mut client2) = socket_pair();
        reactor.register(raw_fd_of(&server2), 12, false).unwrap();
        client2.write_all(b"alive").unwrap();
        assert!(
            wait_for(&mut reactor, 12, Duration::from_secs(2)),
            "{kind}: reactor stopped delivering after an armed fd was closed"
        );
    }
}
