//! Reproduces the ordered-resubmission hazard documented in ROADMAP.md:
//! during a live re-partitioning, a write that a mid-migration server bounces
//! with a *retry* response is resubmitted by the client — and without per-key
//! ordering, that resubmission can land **after** a later pipelined write to
//! the same key that was routed straight to the new owner, silently
//! reinstating the older value.
//!
//! The schedule: each round pipelines write A (value `2r`) to every key and
//! then write B (value `2r + 1`) to every key, while a background thread
//! resizes the table back and forth.  Whenever the router watermark moves
//! between the two submissions for a key, A and B travel different lanes: A
//! gets bounced off the old owner while B completes at the new owner, and
//! the retried A overwrites B.  After draining, every key must hold its B
//! value; any key holding its A value is a write-write reorder.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cphash_suite::migrate::RepartitionCoordinator;
use cphash_suite::{CompletionKind, CpHash, CpHashConfig};

const KEYS: u64 = 128;
const ROUNDS: u64 = 200;

#[test]
fn retried_writes_never_reorder_with_later_writes_to_the_same_key() {
    let mut config = CpHashConfig::new(2, 1).with_max_partitions(4);
    config.migration_chunks = 32;
    let (mut table, mut clients) = CpHash::new(config);
    let mut coordinator = RepartitionCoordinator::new(table.take_control().expect("control"));
    let stop = Arc::new(AtomicBool::new(false));

    let resizer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // Cycle through partition counts so routing changes continuously
            // while the client pipelines same-key write pairs.
            let targets = [4usize, 2, 3, 2];
            let mut resizes = 0usize;
            while !stop.load(Ordering::Acquire) {
                coordinator
                    .resize_to(targets[resizes % targets.len()])
                    .expect("live resize");
                resizes += 1;
            }
            resizes
        })
    };

    let client = &mut clients[0];
    let mut completions = Vec::new();
    for round in 1..=ROUNDS {
        let first = round * 2;
        let second = round * 2 + 1;
        // Write A to every key, then write B to every key, without waiting:
        // both writes for a key are in flight together, and the sleep between
        // the phases deschedules this thread so the resizer can move the
        // watermark — then A and B route to different owners.
        for key in 0..KEYS {
            client.submit_insert(key, &first.to_le_bytes());
        }
        std::thread::sleep(Duration::from_micros(200));
        for key in 0..KEYS {
            client.submit_insert(key, &second.to_le_bytes());
        }
        completions.clear();
        client.drain(&mut completions).expect("drain writes");

        // All writes have completed; verify with pipelined lookups.
        let tokens: HashMap<u64, u64> = (0..KEYS)
            .map(|key| (client.submit_lookup(key), key))
            .collect();
        completions.clear();
        client.drain(&mut completions).expect("drain lookups");
        for c in &completions {
            let key = tokens[&c.token];
            let value = match &c.kind {
                CompletionKind::LookupHit(v) => {
                    u64::from_le_bytes(v.as_slice().try_into().expect("8-byte value"))
                }
                other => panic!("round {round}: key {key} completed as {other:?}"),
            };
            assert_eq!(
                value,
                second,
                "round {round}: key {key} holds the earlier write {value} after a later \
                 write of {second} completed — a retried write was reordered \
                 ({} migration retries so far)",
                client.migration_retries()
            );
        }
    }

    stop.store(true, Ordering::Release);
    let resizes = resizer.join().expect("resizer");
    assert!(resizes > 0, "resizes overlapped the write rounds");
    drop(clients);
    table.shutdown();
}
