//! Equivalence of the server pipelines: the staged batch + prefetch hot
//! loop must produce *byte-identical* completions to the scalar baseline
//! for any operation stream, at any pipeline depth.
//!
//! Determinism argument: each table runs one client, so every partition
//! sees its operations in submission order (one FIFO lane per partition,
//! drained in order), and the harness keeps **at most one operation per
//! key in flight** — so no completion can depend on how an insert's
//! two-phase `Ready` races a concurrent lookup of the same key.  Under
//! those conditions every completion is a pure function of the operation
//! stream, so two tables differing only in pipeline configuration must
//! agree exactly.
//!
//! The rings are deliberately tiny (the minimum 64 slots) so batches
//! straddle ring-wrap boundaries constantly, and the depth sweep includes
//! the degenerate `batch_size = 1`.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use cphash_suite::{
    ClientHandle, Completion, CompletionKind, CpHash, CpHashConfig, ServerPipeline,
};

/// One scripted operation.
#[derive(Debug, Clone, Copy)]
enum ScriptOp {
    Insert { key: u64, len: usize },
    Lookup { key: u64 },
    Delete { key: u64 },
}

impl ScriptOp {
    fn key(&self) -> u64 {
        match *self {
            ScriptOp::Insert { key, .. } | ScriptOp::Lookup { key } | ScriptOp::Delete { key } => {
                key
            }
        }
    }
}

fn script_op() -> impl Strategy<Value = ScriptOp> {
    prop_oneof![
        (0u64..96, 1usize..48).prop_map(|(key, len)| ScriptOp::Insert { key, len }),
        (0u64..96).prop_map(|key| ScriptOp::Lookup { key }),
        (0u64..96).prop_map(|key| ScriptOp::Delete { key }),
    ]
}

/// A deterministic value for (key, op index): both tables must read back
/// exactly these bytes.
fn value_for(key: u64, index: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (key as u8) ^ (index as u8).wrapping_mul(31) ^ (i as u8))
        .collect()
}

/// Run the script against one table, keeping the pipeline full across
/// *distinct* keys but never more than one in-flight operation per key.
/// Returns the completion kind of every operation, in script order.
fn run_script(client: &mut ClientHandle, script: &[ScriptOp]) -> Vec<(u64, CompletionKind)> {
    let mut results: Vec<Option<(u64, CompletionKind)>> = vec![None; script.len()];
    // token -> script index, for matching completions back.
    let mut token_of: HashMap<u64, usize> = HashMap::new();
    let mut busy_keys: HashSet<u64> = HashSet::new();
    let mut completions: Vec<Completion> = Vec::new();
    let mut next = 0usize;

    let drain_into = |completions: &mut Vec<Completion>,
                      token_of: &mut HashMap<u64, usize>,
                      busy_keys: &mut HashSet<u64>,
                      results: &mut Vec<Option<(u64, CompletionKind)>>,
                      script: &[ScriptOp]| {
        for completion in completions.drain(..) {
            let index = token_of
                .remove(&completion.token)
                .expect("completion for an unknown token");
            busy_keys.remove(&script[index].key());
            results[index] = Some((script[index].key(), completion.kind));
        }
    };

    while next < script.len() || !token_of.is_empty() {
        // Submit as long as the next op's key is free (bounded window).
        while next < script.len() && token_of.len() < 64 {
            let op = script[next];
            if busy_keys.contains(&op.key()) {
                break;
            }
            let token = match op {
                ScriptOp::Insert { key, len } => {
                    client.submit_insert(key, &value_for(key, next, len))
                }
                ScriptOp::Lookup { key } => client.submit_lookup(key),
                ScriptOp::Delete { key } => client.submit_delete(key),
            };
            busy_keys.insert(op.key());
            token_of.insert(token, next);
            next += 1;
        }
        completions.clear();
        if client.poll(&mut completions) == 0 {
            client.flush();
            std::hint::spin_loop();
        }
        drain_into(
            &mut completions,
            &mut token_of,
            &mut busy_keys,
            &mut results,
            script,
        );
    }
    results
        .into_iter()
        .map(|r| r.expect("every op completed"))
        .collect()
}

/// Build a table with the given pipeline configuration and run the script.
fn outcomes(
    script: &[ScriptOp],
    pipeline: ServerPipeline,
    batch_size: usize,
    capacity: Option<usize>,
) -> Vec<(u64, CompletionKind)> {
    let mut config = CpHashConfig {
        partitions: 2,
        clients: 1,
        // The minimum ring: batches constantly wrap the ring boundary.
        ring_capacity: 64,
        ..CpHashConfig::new(2, 1)
    };
    config.pipeline = pipeline;
    config.batch_size = batch_size;
    if let Some(bytes) = capacity {
        config.capacity_bytes = Some(bytes);
    }
    let (mut table, mut clients) = CpHash::new(config);
    let outcomes = run_script(&mut clients[0], script);
    drop(clients);
    table.shutdown();
    outcomes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn staged_pipeline_matches_scalar_at_every_depth(
        ops in prop::collection::vec(script_op(), 1..250),
    ) {
        let reference = outcomes(&ops, ServerPipeline::Scalar, 1, None);
        for batch_size in [1usize, 8, 64] {
            for pipeline in [ServerPipeline::Batched, ServerPipeline::BatchedPrefetch] {
                let staged = outcomes(&ops, pipeline, batch_size, None);
                prop_assert_eq!(
                    &reference,
                    &staged,
                    "{} depth {} diverged from scalar",
                    pipeline.as_str(),
                    batch_size
                );
            }
        }
    }

    #[test]
    fn equivalence_holds_under_eviction_pressure(
        ops in prop::collection::vec(script_op(), 1..200),
    ) {
        // A tight byte budget makes inserts evict (LRU order is part of
        // the observable behaviour: a diverging pipeline would surface as
        // different lookup hits/misses).
        let capacity = Some(2 * 1024);
        let reference = outcomes(&ops, ServerPipeline::Scalar, 1, capacity);
        for batch_size in [1usize, 8, 64] {
            let staged = outcomes(&ops, ServerPipeline::BatchedPrefetch, batch_size, capacity);
            prop_assert_eq!(
                &reference,
                &staged,
                "prefetch depth {} diverged under eviction",
                batch_size
            );
        }
    }
}

/// Values read back through the staged pipeline are bit-exact (not just
/// hit/miss-equivalent): a hand-built mixed workload with verification of
/// every byte, at a non-default depth.
#[test]
fn staged_pipeline_round_trips_values_exactly() {
    let config = CpHashConfig {
        ring_capacity: 64,
        batch_size: 7, // deliberately odd, not a power of two
        pipeline: ServerPipeline::BatchedPrefetch,
        ..CpHashConfig::new(2, 1)
    };
    let (mut table, mut clients) = CpHash::new(config);
    let client = &mut clients[0];
    for key in 0..500u64 {
        assert!(client.insert(key, &value_for(key, 0, 24)).unwrap());
    }
    for key in 0..500u64 {
        let got = client.get(key).unwrap().expect("key present");
        assert_eq!(got.as_slice(), value_for(key, 0, 24), "key {key}");
    }
    for key in (0..500u64).step_by(2) {
        assert!(client.delete(key).unwrap());
    }
    for key in 0..500u64 {
        assert_eq!(client.get(key).unwrap().is_some(), key % 2 == 1);
    }
    let snapshot = table.snapshot();
    assert!(
        snapshot.batch.batches > 0 && snapshot.batch.prefetches > 0,
        "the staged pipeline actually ran: {:?}",
        snapshot.batch
    );
    drop(clients);
    table.shutdown();
}
