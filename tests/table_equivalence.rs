//! Cross-crate integration tests: both hash tables, driven with identical
//! operation sequences, must agree with a reference model and with each
//! other.  This is the §5 claim ("both of the hash tables implement the same
//! API") turned into an executable check.

use std::collections::HashMap;

use cphash_suite::{BucketLayout, CpHash, CpHashConfig, EvictionPolicy, LockHash, LockHashConfig};

/// A deterministic mixed operation sequence over a small key space.
fn operation_sequence(n: u64, seed: u64) -> Vec<(u8, u64, u64)> {
    let mut state = seed | 1;
    let mut ops = Vec::with_capacity(n as usize);
    for _ in 0..n {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let op = (state % 10) as u8;
        let key = (state >> 8) % 256;
        let value = state >> 16;
        ops.push((op, key, value));
    }
    ops
}

#[test]
fn cphash_matches_a_reference_map_without_eviction() {
    let (mut table, mut clients) = CpHash::new(CpHashConfig::new(4, 1));
    let client = &mut clients[0];
    let mut reference: HashMap<u64, Vec<u8>> = HashMap::new();

    for (op, key, value) in operation_sequence(30_000, 0xAAAA) {
        match op {
            0..=4 => {
                let bytes = value.to_le_bytes().to_vec();
                assert!(client.insert(key, &bytes).unwrap());
                reference.insert(key, bytes);
            }
            5..=8 => {
                let got = client.get(key).unwrap().map(|v| v.as_slice().to_vec());
                assert_eq!(
                    got,
                    reference.get(&key).cloned(),
                    "lookup mismatch for key {key}"
                );
            }
            _ => {
                let was_present = client.delete(key).unwrap();
                assert_eq!(
                    was_present,
                    reference.remove(&key).is_some(),
                    "delete mismatch for key {key}"
                );
            }
        }
    }
    drop(clients);
    table.shutdown();
    let stats = table.partition_stats();
    assert_eq!(stats.evictions, 0, "unbounded table must never evict");
}

#[test]
fn lockhash_matches_a_reference_map_without_eviction() {
    let table = LockHash::new(LockHashConfig::new(64));
    let mut reference: HashMap<u64, Vec<u8>> = HashMap::new();

    for (op, key, value) in operation_sequence(30_000, 0xBBBB) {
        match op {
            0..=4 => {
                let bytes = value.to_le_bytes().to_vec();
                assert!(table.insert(key, &bytes));
                reference.insert(key, bytes);
            }
            5..=8 => {
                assert_eq!(
                    table.get(key),
                    reference.get(&key).cloned(),
                    "lookup mismatch for key {key}"
                );
            }
            _ => {
                assert_eq!(table.delete(key), reference.remove(&key).is_some());
            }
        }
    }
    assert_eq!(table.len(), reference.len());
}

#[test]
fn bucket_layouts_agree_through_the_full_table_stack() {
    // The tagged inline bucket layout is a pure memory-layout change: both
    // layouts, driven through the full message-passing stack (and through
    // LOCKHASH's locked partitions), must be observably identical — and
    // each must report its own bucket counters honestly.
    let (mut chain_table, mut chain_clients) =
        CpHash::new(CpHashConfig::new(4, 1).with_bucket_layout(BucketLayout::Chain));
    let (mut inline_table, mut inline_clients) =
        CpHash::new(CpHashConfig::new(4, 1).with_bucket_layout(BucketLayout::Inline));
    let lock_chain = LockHash::new(LockHashConfig::new(16).with_bucket_layout(BucketLayout::Chain));
    let lock_inline =
        LockHash::new(LockHashConfig::new(16).with_bucket_layout(BucketLayout::Inline));
    let mut reference: HashMap<u64, Vec<u8>> = HashMap::new();

    for (op, key, value) in operation_sequence(30_000, 0xD1D1) {
        match op {
            0..=4 => {
                let bytes = value.to_le_bytes().to_vec();
                assert!(chain_clients[0].insert(key, &bytes).unwrap());
                assert!(inline_clients[0].insert(key, &bytes).unwrap());
                assert!(lock_chain.insert(key, &bytes));
                assert!(lock_inline.insert(key, &bytes));
                reference.insert(key, bytes);
            }
            5..=8 => {
                let expected = reference.get(&key).cloned();
                let chain_got = chain_clients[0]
                    .get(key)
                    .unwrap()
                    .map(|v| v.as_slice().to_vec());
                let inline_got = inline_clients[0]
                    .get(key)
                    .unwrap()
                    .map(|v| v.as_slice().to_vec());
                assert_eq!(chain_got, expected, "chain lookup mismatch for key {key}");
                assert_eq!(inline_got, expected, "inline lookup mismatch for key {key}");
                assert_eq!(lock_chain.get(key), expected);
                assert_eq!(lock_inline.get(key), expected);
            }
            _ => {
                let was_present = reference.remove(&key).is_some();
                assert_eq!(chain_clients[0].delete(key).unwrap(), was_present);
                assert_eq!(inline_clients[0].delete(key).unwrap(), was_present);
                assert_eq!(lock_chain.delete(key), was_present);
                assert_eq!(lock_inline.delete(key), was_present);
            }
        }
    }
    assert_eq!(lock_chain.len(), reference.len());
    assert_eq!(lock_inline.len(), reference.len());

    drop(chain_clients);
    drop(inline_clients);
    chain_table.shutdown();
    inline_table.shutdown();
    let chain_stats = chain_table.partition_stats();
    let inline_stats = inline_table.partition_stats();
    assert_eq!(chain_stats.hits, inline_stats.hits, "hit counts diverged");
    // Bucket-line counters only ever tick under the inline layout.
    assert_eq!(chain_stats.inline_hits, 0);
    assert_eq!(chain_stats.overflow_probes, 0);
    assert_eq!(chain_stats.tag_false_positives, 0);
    assert!(
        inline_stats.inline_hits > 0,
        "inline layout never used its tagged slots"
    );
    assert_eq!(lock_chain.stats().inline_hits, 0);
    assert!(lock_inline.stats().inline_hits > 0);
}

#[test]
fn both_tables_agree_under_identical_bounded_workloads() {
    // With a capacity bound the two tables may evict *different* victims
    // (CPHash has per-partition LRU over a different partition count), but
    // global invariants must match: every key that is present maps to the
    // value last written for it, and neither table exceeds its byte budget.
    // 256 distinct 8-byte values = 2 KiB of data squeezed into a 512-byte
    // budget, so both tables must evict continuously.
    let capacity = 512;
    let (mut cp_table, mut clients) =
        CpHash::new(CpHashConfig::new(4, 1).with_capacity(capacity, 8));
    let client = &mut clients[0];
    let lock_table = LockHash::new(LockHashConfig::new(4).with_capacity(capacity, 8));
    let mut last_written: HashMap<u64, u64> = HashMap::new();

    for (op, key, value) in operation_sequence(50_000, 0xCCCC) {
        match op {
            0..=5 => {
                let bytes = value.to_le_bytes();
                assert!(client.insert(key, &bytes).unwrap());
                assert!(lock_table.insert(key, &bytes));
                last_written.insert(key, value);
            }
            _ => {
                if let Some(v) = client.get(key).unwrap() {
                    let expected = last_written
                        .get(&key)
                        .copied()
                        .expect("present key was written");
                    assert_eq!(v.as_slice(), expected.to_le_bytes());
                }
                if let Some(v) = lock_table.get(key) {
                    let expected = last_written
                        .get(&key)
                        .copied()
                        .expect("present key was written");
                    assert_eq!(v, expected.to_le_bytes());
                }
            }
        }
    }
    assert!(lock_table.bytes_in_use() <= capacity);
    drop(clients);
    cp_table.shutdown();
    let stats = cp_table.partition_stats();
    assert!(
        stats.evictions > 0,
        "the bounded CPHash table must have evicted"
    );
    assert!(lock_table.stats().evictions > 0);
}

#[test]
fn random_eviction_tables_also_respect_their_budget() {
    let capacity = 4 * 1024;
    let (mut cp_table, mut clients) = CpHash::new(
        CpHashConfig::new(2, 1)
            .with_capacity(capacity, 8)
            .with_eviction(EvictionPolicy::Random),
    );
    let client = &mut clients[0];
    let lock_table = LockHash::new(
        LockHashConfig::new(8)
            .with_capacity(capacity, 8)
            .with_eviction(EvictionPolicy::Random),
    );
    for key in 0..5_000u64 {
        assert!(client.insert(key, &key.to_le_bytes()).unwrap());
        assert!(lock_table.insert(key, &key.to_le_bytes()));
    }
    assert!(lock_table.bytes_in_use() <= capacity);
    let survivors = (0..5_000u64).filter(|&k| lock_table.contains(k)).count();
    assert!(survivors <= capacity / 8);
    drop(clients);
    cp_table.shutdown();
}
