//! Integration tests for the pipelined client API, the arbitrary-key
//! adapter (§8.2) and the dynamic-server controller (§8.1) working together
//! against a live table.

use cphash_suite::table::{Recommendation, ServerLoadController};
use cphash_suite::{AnyKeyClient, CompletionKind, CpHash, CpHashConfig};

#[test]
fn pipelined_and_synchronous_apis_interleave_correctly() {
    let (mut table, mut clients) = CpHash::new(CpHashConfig::new(2, 1));
    let client = &mut clients[0];

    // Queue a pipelined batch, then issue synchronous calls before draining:
    // the synchronous call must not steal or lose the pipelined completions.
    let tokens: Vec<u64> = (0..500u64)
        .map(|k| client.submit_insert(k, &k.to_le_bytes()))
        .collect();
    assert!(client.insert(10_000, b"sync value").unwrap());
    assert_eq!(
        client.get(10_000).unwrap().unwrap().as_slice(),
        b"sync value"
    );

    let mut completions = Vec::new();
    client.drain(&mut completions).unwrap();
    // All 500 pipelined inserts completed (the sync ops' completions were
    // consumed by the sync calls themselves).
    let mut seen: Vec<u64> = completions.iter().map(|c| c.token).collect();
    seen.sort_unstable();
    let mut expected = tokens.clone();
    expected.sort_unstable();
    assert_eq!(seen, expected);
    assert!(completions
        .iter()
        .all(|c| c.kind == CompletionKind::Inserted));

    // And the data is all there.
    for key in 0..500u64 {
        assert_eq!(
            client
                .get(key)
                .unwrap()
                .expect("pipelined key present")
                .as_slice(),
            key.to_le_bytes()
        );
    }
    drop(clients);
    table.shutdown();
}

#[test]
fn anykey_adapter_supports_string_keys_end_to_end() {
    let (mut table, mut clients) = CpHash::new(CpHashConfig::new(4, 1));
    {
        let mut cache = AnyKeyClient::new(&mut clients[0]);
        // A realistic session-cache shape: URL-ish keys, JSON-ish values.
        for i in 0..200u32 {
            let key = format!("/render/user/{i}/dashboard");
            let value = format!("{{\"user\":{i},\"widgets\":[1,2,3]}}");
            assert!(cache.insert(key.as_bytes(), value.as_bytes()).unwrap());
        }
        for i in 0..200u32 {
            let key = format!("/render/user/{i}/dashboard");
            let value = cache
                .get(key.as_bytes())
                .unwrap()
                .expect("cached page present");
            assert!(String::from_utf8(value)
                .unwrap()
                .contains(&format!("\"user\":{i}")));
        }
        assert_eq!(cache.get(b"/render/user/9999/dashboard").unwrap(), None);
        assert!(cache.delete(b"/render/user/0/dashboard").unwrap());
        assert_eq!(cache.get(b"/render/user/0/dashboard").unwrap(), None);
    }
    drop(clients);
    table.shutdown();
}

#[test]
fn server_utilization_feeds_the_dynamic_controller() {
    let (mut table, mut clients) = CpHash::new(CpHashConfig::new(2, 1));
    let client = &mut clients[0];
    // Generate some load so the servers record busy iterations.
    let mut completions = Vec::new();
    for key in 0..20_000u64 {
        client.submit_insert(key, &key.to_le_bytes());
        if client.outstanding() > 1_000 {
            client.poll(&mut completions);
            completions.clear();
        }
    }
    client.drain(&mut completions).unwrap();

    let snapshot = table.snapshot();
    assert!(snapshot.operations >= 20_000);
    assert!(snapshot.mean_utilization > 0.0 && snapshot.mean_utilization <= 1.0);

    let controller = ServerLoadController::default();
    let recommendation = controller.recommend(table.server_stats(), table.partitions());
    // Whatever the direction, the recommendation must stay within bounds and
    // be derived from the measured utilization.
    match recommendation {
        Recommendation::Keep(n) | Recommendation::Grow(n) | Recommendation::Shrink(n) => {
            assert!(n >= 1);
        }
    }
    drop(clients);
    table.shutdown();
}
