//! End-to-end tests of the three key/value servers over real TCP
//! connections, driven by the bundled load generator — the §7 setup shrunk
//! to test size.

use cphash_suite::kvserver::{
    CpServer, CpServerConfig, LockServer, LockServerConfig, MemcacheCluster, MemcacheConfig,
};
use cphash_suite::loadgen::tcp::{run_tcp_load, TcpLoadOptions};
use cphash_suite::loadgen::WorkloadSpec;

fn small_spec() -> WorkloadSpec {
    WorkloadSpec {
        working_set_bytes: 64 * 1024,
        capacity_bytes: 64 * 1024,
        operations: 20_000,
        insert_ratio: 0.3,
        prefill: false,
        ..Default::default()
    }
}

#[test]
fn cpserver_under_tcp_load() {
    let mut server = CpServer::start(CpServerConfig {
        client_threads: 2,
        partitions: 2,
        capacity_bytes: Some(64 * 1024),
        typical_value_bytes: 8,
        ..Default::default()
    })
    .unwrap();
    let spec = small_spec();
    let result = run_tcp_load(
        &spec,
        &TcpLoadOptions {
            addr: server.addr(),
            threads: 2,
            connections_per_thread: 2,
            pipeline: 32,
        },
    )
    .unwrap();
    assert_eq!(result.operations, spec.operations);
    assert!(result.lookups > 0);
    // 30 % of requests were inserts into a table big enough to hold the
    // whole working set, so a healthy fraction of lookups must hit.
    assert!(
        result.lookup_hits as f64 / result.lookups as f64 > 0.2,
        "hit rate {:.3}",
        result.lookup_hits as f64 / result.lookups as f64
    );
    assert!(server.metrics().requests() >= spec.operations);
    assert!(server.table_stats().inserts > 0);
    server.shutdown();
}

#[test]
fn lockserver_under_tcp_load() {
    let mut server = LockServer::start(LockServerConfig {
        worker_threads: 2,
        partitions: 64,
        capacity_bytes: Some(64 * 1024),
        typical_value_bytes: 8,
        ..Default::default()
    })
    .unwrap();
    let spec = small_spec();
    let result = run_tcp_load(
        &spec,
        &TcpLoadOptions {
            addr: server.addr(),
            threads: 2,
            connections_per_thread: 2,
            pipeline: 32,
        },
    )
    .unwrap();
    assert_eq!(result.operations, spec.operations);
    assert!(result.lookup_hits > 0);
    assert!(server.metrics().requests() >= spec.operations);
    server.shutdown();
}

#[test]
fn memcache_style_cluster_under_partitioned_load() {
    let mut cluster = MemcacheCluster::start(MemcacheConfig {
        instances: 2,
        capacity_bytes_per_instance: Some(32 * 1024),
        ..Default::default()
    })
    .unwrap();
    // Client-side partitioning: give each instance half the working set and
    // half the request volume, concurrently.
    let per_instance_spec = WorkloadSpec {
        working_set_bytes: 32 * 1024,
        capacity_bytes: 32 * 1024,
        operations: 8_000,
        insert_ratio: 0.3,
        prefill: false,
        ..Default::default()
    };
    let addrs = cluster.addrs();
    let totals: Vec<_> = std::thread::scope(|scope| {
        addrs
            .iter()
            .map(|addr| {
                let addr = *addr;
                scope.spawn(move || {
                    run_tcp_load(
                        &per_instance_spec,
                        &TcpLoadOptions {
                            addr,
                            threads: 1,
                            connections_per_thread: 2,
                            pipeline: 32,
                        },
                    )
                    .unwrap()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    let total_ops: u64 = totals.iter().map(|r| r.operations).sum();
    assert_eq!(total_ops, 16_000);
    assert!(cluster.metrics().requests() >= total_ops);
    assert!(cluster.total_elements() > 0);
    cluster.shutdown();
}

#[test]
fn delete_over_tcp_against_every_server() {
    use cphash_suite::{KeyRef, KvClient, RemoteClient};

    // DELETE reached core's `submit_delete` but had no wire opcode before
    // kvproto v2; lock in the full TCP path on all three servers.
    fn delete_roundtrip(addr: std::net::SocketAddr) {
        let mut client = RemoteClient::connect(addr).unwrap();
        assert_eq!(client.protocol_version(), 2);
        // u64 keys.
        assert!(client
            .insert_blocking(KeyRef::Hash(1234), b"doomed")
            .unwrap());
        assert!(client.delete_blocking(KeyRef::Hash(1234)).unwrap());
        assert!(!client.delete_blocking(KeyRef::Hash(1234)).unwrap());
        assert_eq!(client.get_blocking(KeyRef::Hash(1234)).unwrap(), None);
        // Byte-string keys (the §8.2 envelope, now server-side).
        assert!(client
            .insert_blocking(KeyRef::Bytes(b"session:77"), b"token")
            .unwrap());
        assert!(client
            .delete_blocking(KeyRef::Bytes(b"session:77"))
            .unwrap());
        assert_eq!(
            client.get_blocking(KeyRef::Bytes(b"session:77")).unwrap(),
            None
        );
    }

    let mut cpserver = CpServer::start(CpServerConfig::default()).unwrap();
    delete_roundtrip(cpserver.addr());
    assert!(cpserver.metrics().deletes() >= 3);
    cpserver.shutdown();

    let mut lockserver = LockServer::start(LockServerConfig::default()).unwrap();
    delete_roundtrip(lockserver.addr());
    lockserver.shutdown();

    let mut cluster = MemcacheCluster::start(MemcacheConfig {
        instances: 1,
        ..Default::default()
    })
    .unwrap();
    delete_roundtrip(cluster.addrs()[0]);
    cluster.shutdown();
}

#[test]
fn overload_retry_sheds_to_the_client_resubmission_path() {
    use cphash_suite::{KeyRef, KvClient, KvOp, RemoteClient};

    // A CPSERVER configured to shed past one in-flight table operation per
    // worker: a pipelined v2 client must observe nothing but correct
    // results (its RemoteClient resubmits wire-level Retries
    // transparently), while the server's metrics prove shedding happened.
    let mut server = CpServer::start(CpServerConfig {
        overload_retry: Some(1),
        ..Default::default()
    })
    .unwrap();
    let mut client = RemoteClient::connect(server.addr()).unwrap();
    assert_eq!(client.protocol_version(), 2);

    const N: u64 = 300;
    for key in 0..N {
        client.submit(KvOp::Insert(KeyRef::Hash(key), &(key * 3).to_le_bytes()));
    }
    let mut completions = Vec::new();
    client.drain_completions(&mut completions).unwrap();
    assert_eq!(completions.len(), N as usize);
    for key in 0..N {
        client.submit(KvOp::Get(KeyRef::Hash(key)));
    }
    completions.clear();
    client.drain_completions(&mut completions).unwrap();
    assert_eq!(completions.len(), N as usize);
    for completion in &completions {
        match &completion.kind {
            cphash_suite::CompletionKind::LookupHit(_) => {}
            other => panic!("pipelined lookup completed as {other:?}"),
        }
    }
    for key in (0..N).step_by(7) {
        let got = client.get_blocking(KeyRef::Hash(key)).unwrap();
        assert_eq!(got.unwrap().as_slice(), (key * 3).to_le_bytes());
    }
    assert!(
        server.metrics().retries_emitted() > 0,
        "the deep pipeline must have crossed the shed threshold"
    );
    assert!(client.retries() > 0, "the client resubmitted shed requests");
    server.shutdown();
}

#[test]
fn oversized_envelope_is_refused_not_stored() {
    use cphash_suite::kvproto::MAX_VALUE_BYTES;
    use cphash_suite::{KeyRef, KvClient, RemoteClient};

    // A byte-keyed value near the wire limit fits its own frame, but the
    // server-side §8.2 envelope (4 + key_len extra bytes) would exceed
    // MAX_VALUE_BYTES — and a stored oversized envelope would later produce
    // lookup replies no client decoder accepts, killing innocent readers'
    // connections.  The server must refuse the insert instead.
    let mut server = CpServer::start(CpServerConfig::default()).unwrap();
    let mut client = RemoteClient::connect(server.addr()).unwrap();
    let big = vec![0x5Au8; MAX_VALUE_BYTES - 2];
    assert!(
        !client.insert_blocking(KeyRef::Bytes(b"big"), &big).unwrap(),
        "enveloped value past the limit reads as a capacity refusal"
    );
    // The connection survives and the key was not stored.
    assert_eq!(client.get_blocking(KeyRef::Bytes(b"big")).unwrap(), None);
    // A maximal value that still fits with its envelope is accepted.
    let fits = vec![0xA5u8; MAX_VALUE_BYTES - 4 - 3];
    assert!(client
        .insert_blocking(KeyRef::Bytes(b"big"), &fits)
        .unwrap());
    assert_eq!(
        client
            .get_blocking(KeyRef::Bytes(b"big"))
            .unwrap()
            .unwrap()
            .len(),
        fits.len()
    );
    drop(client);
    server.shutdown();
}

#[test]
fn all_three_servers_agree_on_protocol_semantics() {
    // Insert a known key into each server and read it back through the same
    // wire protocol; a miss must come back as an empty frame.
    use bytes::BytesMut;
    use cphash_suite::kvproto::{encode_insert, encode_lookup, ResponseDecoder};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn roundtrip(addr: std::net::SocketAddr) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut decoder = ResponseDecoder::new();
        let mut wire = BytesMut::new();
        encode_insert(&mut wire, 77, b"same value everywhere");
        encode_lookup(&mut wire, 77);
        encode_lookup(&mut wire, 78);
        stream.write_all(&wire).unwrap();
        let mut responses = Vec::new();
        let mut buf = [0u8; 4096];
        while responses.len() < 2 {
            if let Some(r) = decoder.next_response().unwrap() {
                responses.push(r);
                continue;
            }
            match stream.read(&mut buf) {
                Ok(n) if n > 0 => decoder.feed(&buf[..n]),
                Ok(_) => panic!("connection closed early"),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => panic!("read error: {e}"),
            }
        }
        assert_eq!(
            responses[0].value.as_deref(),
            Some(&b"same value everywhere"[..])
        );
        assert_eq!(responses[1].value, None);
    }

    let mut cpserver = CpServer::start(CpServerConfig::default()).unwrap();
    roundtrip(cpserver.addr());
    cpserver.shutdown();

    let mut lockserver = LockServer::start(LockServerConfig::default()).unwrap();
    roundtrip(lockserver.addr());
    lockserver.shutdown();

    let mut cluster = MemcacheCluster::start(MemcacheConfig {
        instances: 1,
        ..Default::default()
    })
    .unwrap();
    roundtrip(cluster.addrs()[0]);
    cluster.shutdown();
}
